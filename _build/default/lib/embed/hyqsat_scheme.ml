type t = {
  embedding : Embedding.t;
  embedded_clauses : int;
  edges : (int * int) list;
}

(* per-clause transactionality is implemented with an undo journal: every
   mutation pushes its inverse, and a failed clause replays the journal.
   (A snapshot-copy approach costs O(hardware) per clause; the journal is
   O(changes), which keeps the whole embedding linear.) *)
type undo =
  | U_vline of int  (** node whose vertical line to revoke *)
  | U_hused of int * int  (** (hline, column) to free *)
  | U_rows of int * int list  (** node's previous rows_needed *)
  | U_segs of int * (int * int * int) list option  (** node's previous segments *)
  | U_edge of int * int  (** edge to un-register *)

type state = {
  graph : Chimera.Graph.t;
  vline_of_node : (int, int) Hashtbl.t;
  mutable next_vline : int;
  hline_used : bool array array; (* hline -> column -> used *)
  rows_needed : (int, int list) Hashtbl.t;
  segments : (int, (int * int * int) list) Hashtbl.t; (* node -> (hline, c1, c2) *)
  edges_done : (int * int, (int * int) option) Hashtbl.t; (* edge -> physical coupler *)
  mutable journal : undo list;
}

let norm_edge i j = if i < j then (i, j) else (j, i)

let rollback st =
  List.iter
    (function
      | U_vline node ->
          Hashtbl.remove st.vline_of_node node;
          st.next_vline <- st.next_vline - 1
      | U_hused (hl, c) -> st.hline_used.(hl).(c) <- false
      | U_rows (node, prev) -> Hashtbl.replace st.rows_needed node prev
      | U_segs (node, Some prev) -> Hashtbl.replace st.segments node prev
      | U_segs (node, None) -> Hashtbl.remove st.segments node
      | U_edge (i, j) -> Hashtbl.remove st.edges_done (i, j))
    st.journal;
  st.journal <- []

let commit st = st.journal <- []

(* bottom-up order of horizontal lines: highest row first, then index *)
let hline_order g =
  let n = Chimera.Graph.num_horizontal_lines g in
  List.sort
    (fun a b ->
      let ra = Chimera.Graph.hline_row g a and rb = Chimera.Graph.hline_row g b in
      if ra <> rb then compare rb ra else compare a b)
    (List.init n Fun.id)

let add_row st v row =
  let cur = Option.value ~default:[] (Hashtbl.find_opt st.rows_needed v) in
  st.journal <- U_rows (v, cur) :: st.journal;
  Hashtbl.replace st.rows_needed v (row :: cur)

let add_segment st node seg =
  let prev = Hashtbl.find_opt st.segments node in
  st.journal <- U_segs (node, prev) :: st.journal;
  Hashtbl.replace st.segments node (seg :: Option.value ~default:[] prev)

let replace_segment st node ~old_seg ~new_seg =
  let prev = Hashtbl.find st.segments node in
  st.journal <- U_segs (node, Some prev) :: st.journal;
  Hashtbl.replace st.segments node
    (List.map (fun seg -> if seg = old_seg then new_seg else seg) prev)

let claim_column st hl c =
  st.hline_used.(hl).(c) <- true;
  st.journal <- U_hused (hl, c) :: st.journal

(* connection requirement: key node and the distinct target nodes it must
   reach via one horizontal segment *)
type requirement = { key : int; key_has_vline : bool; targets : int list }

let requirement_columns st req =
  let cols =
    List.map
      (fun y -> Chimera.Graph.vline_col st.graph (Hashtbl.find st.vline_of_node y))
      req.targets
  in
  let cols =
    if req.key_has_vline then
      Chimera.Graph.vline_col st.graph (Hashtbl.find st.vline_of_node req.key) :: cols
    else cols
  in
  (List.fold_left min (List.hd cols) cols, List.fold_left max (List.hd cols) cols)

(* register the crossings of a placed/extended segment *)
let register_targets st req hl =
  let row = Chimera.Graph.hline_row st.graph hl in
  if req.key_has_vline then add_row st req.key row;
  List.iter
    (fun y ->
      let vl = Hashtbl.find st.vline_of_node y in
      let vq, hq = Chimera.Graph.crossing st.graph ~vline:vl ~hline:hl in
      add_row st y row;
      (* orient the coupler as (qubit of min node, qubit of max node) *)
      let coupler = if req.key < y then (hq, vq) else (vq, hq) in
      let key = norm_edge req.key y in
      st.journal <- U_edge (fst key, snd key) :: st.journal;
      Hashtbl.replace st.edges_done key (Some coupler))
    req.targets

(* try to place one requirement: first by extending one of the key's
   existing segments along its line (cheap, keeps chains short), else on the
   lowest horizontal line with a free stretch; false when nothing fits *)
let place_requirement st ~order req =
  let c1, c2 = requirement_columns st req in
  let try_extend () =
    let segs = Option.value ~default:[] (Hashtbl.find_opt st.segments req.key) in
    let extendable ((hl, s1, s2) as seg) =
      let lo = min c1 s1 and hi = max c2 s2 in
      let used = st.hline_used.(hl) in
      let rec free c = c > hi || (((c >= s1 && c <= s2) || not used.(c)) && free (c + 1)) in
      if free lo then Some (seg, lo, hi) else None
    in
    List.find_map extendable segs
  in
  match try_extend () with
  | Some (((hl, s1, s2) as old_seg), lo, hi) ->
      for c = lo to hi do
        if not (c >= s1 && c <= s2) then claim_column st hl c
      done;
      replace_segment st req.key ~old_seg ~new_seg:(hl, lo, hi);
      register_targets st req hl;
      true
  | None -> (
      let fits hl =
        let used = st.hline_used.(hl) in
        let rec free c = c > c2 || ((not used.(c)) && free (c + 1)) in
        free c1
      in
      match List.find_opt fits order with
      | None -> false
      | Some hl ->
          for c = c1 to c2 do
            claim_column st hl c
          done;
          add_segment st req.key (hl, c1, c2);
          register_targets st req hl;
          true)

(* requirements induced by one encoded clause; aux = -1 when none.  The
   problem-graph edges of Equation 4 are (v1,v2) and (a,v1) (a,v2) (a,v3);
   for ≤2-literal clauses just (v1,v2). *)
let clause_requirements st clause aux =
  let fresh_edge i j = (not (i = j)) && not (Hashtbl.mem st.edges_done (norm_edge i j)) in
  match (List.map Sat.Lit.var (Sat.Clause.lits clause), aux) with
  | [ v1; v2; v3 ], a when a >= 0 ->
      let var_req =
        if fresh_edge v1 v2 then [ { key = v1; key_has_vline = true; targets = [ v2 ] } ]
        else []
      in
      let aux_targets =
        List.filter (fun v -> fresh_edge a v) (List.sort_uniq Int.compare [ v1; v2; v3 ])
      in
      let aux_req =
        if aux_targets = [] then []
        else [ { key = a; key_has_vline = false; targets = aux_targets } ]
      in
      var_req @ aux_req
  | [ v1; v2 ], _ ->
      if fresh_edge v1 v2 then [ { key = v1; key_has_vline = true; targets = [ v2 ] } ] else []
  | _ -> []

(* allocate vertical lines for the clause's unseen variables *)
let allocate_vlines st clause =
  let needed =
    List.filter (fun v -> not (Hashtbl.mem st.vline_of_node v)) (Sat.Clause.vars clause)
  in
  if st.next_vline + List.length needed > Chimera.Graph.num_vertical_lines st.graph then false
  else begin
    List.iter
      (fun v ->
        Hashtbl.replace st.vline_of_node v st.next_vline;
        st.next_vline <- st.next_vline + 1;
        st.journal <- U_vline v :: st.journal)
      needed;
    true
  end

let build_embedding st =
  let emb = Embedding.create st.graph in
  (* variables: contiguous vertical run covering every needed row, plus own
     horizontal segments *)
  Hashtbl.iter
    (fun node vl ->
      let rows = Option.value ~default:[] (Hashtbl.find_opt st.rows_needed node) in
      let rmin, rmax =
        match rows with
        | [] -> (0, 0)
        | r :: rest -> (List.fold_left min r rest, List.fold_left max r rest)
      in
      let vqubits =
        List.filteri
          (fun r _ -> r >= rmin && r <= rmax)
          (Chimera.Graph.vertical_line_qubits st.graph vl)
      in
      let hqubits =
        List.concat_map
          (fun (hl, c1, c2) ->
            List.filteri
              (fun c _ -> c >= c1 && c <= c2)
              (Chimera.Graph.horizontal_line_qubits st.graph hl))
          (Option.value ~default:[] (Hashtbl.find_opt st.segments node))
      in
      Embedding.set_chain emb node (vqubits @ hqubits))
    st.vline_of_node;
  (* auxiliaries: horizontal segments only *)
  Hashtbl.iter
    (fun node segs ->
      if not (Hashtbl.mem st.vline_of_node node) then
        Embedding.set_chain emb node
          (List.concat_map
             (fun (hl, c1, c2) ->
               List.filteri
                 (fun c _ -> c >= c1 && c <= c2)
                 (Chimera.Graph.horizontal_line_qubits st.graph hl))
             segs))
    st.segments;
  (* registered physical couplers *)
  Hashtbl.iter
    (fun (i, j) coupler ->
      match coupler with
      | Some (qi, qj) -> Embedding.set_edge_coupler emb i j (qi, qj)
      | None -> ())
    st.edges_done;
  emb

let embed graph (enc : Qubo.Encode.t) =
  let st =
    {
      graph;
      vline_of_node = Hashtbl.create 64;
      next_vline = 0;
      hline_used =
        Array.init (Chimera.Graph.num_horizontal_lines graph) (fun _ ->
            Array.make (Chimera.Graph.cols graph) false);
      rows_needed = Hashtbl.create 64;
      segments = Hashtbl.create 64;
      edges_done = Hashtbl.create 256;
      journal = [];
    }
  in
  let order = hline_order graph in
  let n_clauses = Array.length enc.Qubo.Encode.clauses in
  let rec go k =
    if k >= n_clauses then k
    else
      let clause = enc.Qubo.Encode.clauses.(k) in
      let aux = enc.Qubo.Encode.aux_of_clause.(k) in
      let ok =
        allocate_vlines st clause
        && List.for_all (place_requirement st ~order) (clause_requirements st clause aux)
      in
      if ok then begin
        commit st;
        go (k + 1)
      end
      else begin
        rollback st;
        k
      end
  in
  let embedded_clauses = go 0 in
  let embedding = build_embedding st in
  let edges = Hashtbl.fold (fun e _ acc -> e :: acc) st.edges_done [] in
  { embedding; embedded_clauses; edges = List.sort compare edges }

let capacity_estimate graph =
  (* horizontal qubits bound segment space (~4 columns per clause across the
     aux and variable segments); variables are bounded separately by the
     vertical lines, which the clause-queue generator's var budget enforces *)
  let h_qubits = Chimera.Graph.num_horizontal_lines graph * Chimera.Graph.cols graph in
  h_qubits / 4
