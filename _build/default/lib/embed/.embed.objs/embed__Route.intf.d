lib/embed/route.mli: Chimera
