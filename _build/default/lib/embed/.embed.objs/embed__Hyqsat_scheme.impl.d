lib/embed/hyqsat_scheme.ml: Array Chimera Embedding Fun Hashtbl Int List Option Qubo Sat
