lib/embed/embedding.ml: Chimera Hashtbl Int List Printf
