lib/embed/place_route.mli: Chimera Embedding
