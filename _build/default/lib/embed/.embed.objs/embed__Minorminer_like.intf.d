lib/embed/minorminer_like.mli: Chimera Embedding
