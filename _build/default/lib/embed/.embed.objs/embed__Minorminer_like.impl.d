lib/embed/minorminer_like.ml: Array Chimera Embedding Hashtbl Int List Option Route Stats Sys
