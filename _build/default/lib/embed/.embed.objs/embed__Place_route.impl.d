lib/embed/place_route.ml: Array Chimera Embedding Hashtbl List Option Queue Route Sys
