lib/embed/hyqsat_scheme.mli: Chimera Embedding Qubo
