lib/embed/route.ml: Array Chimera List Option Queue
