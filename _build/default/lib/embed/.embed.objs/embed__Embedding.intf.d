lib/embed/embedding.mli: Chimera Hashtbl
