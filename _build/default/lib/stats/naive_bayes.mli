(** Two-class Gaussian Naive Bayes over a scalar feature.

    The HyQSAT backend (paper §V-A, Fig 8) fits one Gaussian to the annealer
    energy of satisfiable problems and one to unsatisfiable problems, then
    partitions the energy axis into confidence intervals at a 90 % posterior
    factor. *)

type t = {
  sat : Gaussian.t;      (** energy distribution of satisfiable problems *)
  unsat : Gaussian.t;    (** energy distribution of unsatisfiable problems *)
  prior_sat : float;     (** P(satisfiable) *)
}

val fit : sat:float array -> unsat:float array -> t
(** Fit from labelled energy samples; the prior is the empirical class
    frequency.  Both arrays must be non-empty. *)

val posterior_sat : t -> float -> float
(** [posterior_sat m e] is P(satisfiable | energy = e). *)

val predict : t -> float -> [ `Sat | `Unsat ]
(** Maximum a-posteriori class. *)

val accuracy : t -> sat:float array -> unsat:float array -> float
(** Fraction of labelled samples classified correctly. *)

type partition = {
  sat_cut : float;
      (** below (or at) this energy, P(sat|e) ≥ confidence: "near satisfiable" *)
  unsat_cut : float;
      (** above this energy, P(unsat|e) ≥ confidence: "near unsatisfiable" *)
}

val partition : ?confidence:float -> t -> partition
(** [partition m] computes the paper's confidence-interval cut points (default
    confidence [0.9]).  Energies in [(sat_cut, unsat_cut]] are "uncertain".
    If the classes are so well separated that the posterior never dips below
    the confidence on one side, the cut degenerates to the crossing point. *)

type interval = Satisfiable | Near_satisfiable | Uncertain | Near_unsatisfiable

val classify : partition -> float -> interval
(** The paper's four intervals: energy 0 ⇒ [Satisfiable];
    (0, sat_cut] ⇒ [Near_satisfiable]; (sat_cut, unsat_cut] ⇒ [Uncertain];
    above ⇒ [Near_unsatisfiable]. *)

val interval_to_string : interval -> string
val pp : Format.formatter -> t -> unit
