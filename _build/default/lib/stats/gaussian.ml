type t = { mu : float; sigma : float }

let fit xs =
  let mu = Descriptive.mean xs in
  let sigma = Float.max (Descriptive.std xs) 1e-9 in
  { mu; sigma }

let log_pdf { mu; sigma } x =
  let z = (x -. mu) /. sigma in
  -0.5 *. ((z *. z) +. log (2. *. Float.pi)) -. log sigma

let pdf g x = exp (log_pdf g x)

(* Abramowitz & Stegun 7.1.26 *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let poly =
    t
    *. (0.254829592
       +. (t *. (-0.284496736 +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  sign *. (1. -. (poly *. exp (-.x *. x)))

let cdf { mu; sigma } x = 0.5 *. (1. +. erf ((x -. mu) /. (sigma *. sqrt 2.)))

let quantile g p =
  if p <= 0. || p >= 1. then invalid_arg "Gaussian.quantile: p out of (0,1)";
  let rec bisect lo hi n =
    if n = 0 then (lo +. hi) /. 2.
    else
      let mid = (lo +. hi) /. 2. in
      if cdf g mid < p then bisect mid hi (n - 1) else bisect lo mid (n - 1)
  in
  bisect (g.mu -. (12. *. g.sigma)) (g.mu +. (12. *. g.sigma)) 80

let pp fmt { mu; sigma } = Format.fprintf fmt "N(%.4f, %.4f)" mu sigma
