let nonempty name xs = if Array.length xs = 0 then invalid_arg ("Descriptive." ^ name)

let sum xs = Array.fold_left ( +. ) 0. xs

let mean xs =
  nonempty "mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  nonempty "variance" xs;
  let m = mean xs in
  sum (Array.map (fun x -> (x -. m) ** 2.) xs) /. float_of_int (Array.length xs)

let std xs = sqrt (variance xs)

let geomean xs =
  nonempty "geomean" xs;
  Array.iter (fun x -> if x <= 0. then invalid_arg "Descriptive.geomean: nonpositive") xs;
  exp (sum (Array.map log xs) /. float_of_int (Array.length xs))

let sorted xs =
  let ys = Array.copy xs in
  Array.sort Float.compare ys;
  ys

let percentile xs p =
  nonempty "percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Descriptive.percentile: p out of range";
  let ys = sorted xs in
  let n = Array.length ys in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  let frac = rank -. floor rank in
  (ys.(lo) *. (1. -. frac)) +. (ys.(hi) *. frac)

let median xs = percentile xs 50.

let min xs =
  nonempty "min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  nonempty "max" xs;
  Array.fold_left Float.max xs.(0) xs

let correlation xs ys =
  if Array.length xs <> Array.length ys then invalid_arg "Descriptive.correlation";
  nonempty "correlation" xs;
  let mx = mean xs and my = mean ys in
  let cov = ref 0. and vx = ref 0. and vy = ref 0. in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      cov := !cov +. (dx *. dy);
      vx := !vx +. (dx *. dx);
      vy := !vy +. (dy *. dy))
    xs;
  if !vx = 0. || !vy = 0. then 0. else !cov /. sqrt (!vx *. !vy)

type histogram = { lo : float; hi : float; counts : int array }

let histogram ~bins xs =
  nonempty "histogram" xs;
  if bins <= 0 then invalid_arg "Descriptive.histogram: bins";
  let lo = min xs and hi = max xs in
  let counts = Array.make bins 0 in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b >= bins then bins - 1 else if b < 0 then 0 else b in
      counts.(b) <- counts.(b) + 1)
    xs;
  { lo; hi; counts }

let pp_histogram fmt { lo; hi; counts } =
  let bins = Array.length counts in
  let width = (hi -. lo) /. float_of_int bins in
  let peak = Array.fold_left Stdlib.max 1 counts in
  Array.iteri
    (fun i c ->
      let bar = String.make (c * 40 / peak) '#' in
      Format.fprintf fmt "[%8.2f,%8.2f) %5d %s@." (lo +. (float_of_int i *. width))
        (lo +. (float_of_int (i + 1) *. width))
        c bar)
    counts
