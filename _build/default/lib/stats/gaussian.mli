(** Univariate Gaussian distribution: fitting, density, tail functions. *)

type t = { mu : float; sigma : float }

val fit : float array -> t
(** Maximum-likelihood fit (population variance); a floor of [1e-9] is applied
    to [sigma] so degenerate samples stay usable. *)

val pdf : t -> float -> float
val log_pdf : t -> float -> float
val cdf : t -> float -> float
(** Via the Abramowitz–Stegun erf approximation (|error| < 1.5e-7). *)

val quantile : t -> float -> float
(** Inverse CDF by bisection; [p] must be in (0,1). *)

val pp : Format.formatter -> t -> unit
