type t = { sat : Gaussian.t; unsat : Gaussian.t; prior_sat : float }

let fit ~sat ~unsat =
  if Array.length sat = 0 || Array.length unsat = 0 then
    invalid_arg "Naive_bayes.fit: empty class";
  let n_sat = float_of_int (Array.length sat)
  and n_unsat = float_of_int (Array.length unsat) in
  {
    sat = Gaussian.fit sat;
    unsat = Gaussian.fit unsat;
    prior_sat = n_sat /. (n_sat +. n_unsat);
  }

let posterior_sat m e =
  let ls = Gaussian.log_pdf m.sat e +. log m.prior_sat in
  let lu = Gaussian.log_pdf m.unsat e +. log (1. -. m.prior_sat) in
  (* stable logistic of the log-odds *)
  1. /. (1. +. exp (lu -. ls))

let predict m e = if posterior_sat m e >= 0.5 then `Sat else `Unsat

let accuracy m ~sat ~unsat =
  let correct = ref 0 in
  Array.iter (fun e -> if predict m e = `Sat then incr correct) sat;
  Array.iter (fun e -> if predict m e = `Unsat then incr correct) unsat;
  float_of_int !correct /. float_of_int (Array.length sat + Array.length unsat)

type partition = { sat_cut : float; unsat_cut : float }

(* Scan only the band between the two class means: with unequal variances
   the likelihood ratio is non-monotone in the far tails (the wider Gaussian
   wins at both extremes), but inside the band the posterior decays from the
   satisfiable side to the unsatisfiable side, which is the regime the
   backend classifies. *)
let partition ?(confidence = 0.9) m =
  let lo = Float.min m.sat.Gaussian.mu m.unsat.Gaussian.mu in
  let hi = Float.max m.sat.Gaussian.mu m.unsat.Gaussian.mu in
  let steps = 4000 in
  let step = (hi -. lo) /. float_of_int (max steps 1) in
  let sat_cut = ref lo and unsat_cut = ref hi in
  for i = 0 to steps do
    let e = lo +. (float_of_int i *. step) in
    let p = posterior_sat m e in
    if p >= confidence then sat_cut := e;
    if 1. -. p >= confidence && e < !unsat_cut then unsat_cut := e
  done;
  if !sat_cut > !unsat_cut then begin
    (* perfectly separated or inverted: fall back to the decision boundary *)
    let mid = (!sat_cut +. !unsat_cut) /. 2. in
    sat_cut := mid;
    unsat_cut := mid
  end;
  { sat_cut = !sat_cut; unsat_cut = !unsat_cut }

type interval = Satisfiable | Near_satisfiable | Uncertain | Near_unsatisfiable

let classify p e =
  if e <= 1e-9 then Satisfiable
  else if e <= p.sat_cut then Near_satisfiable
  else if e <= p.unsat_cut then Uncertain
  else Near_unsatisfiable

let interval_to_string = function
  | Satisfiable -> "satisfiable"
  | Near_satisfiable -> "near-satisfiable"
  | Uncertain -> "uncertain"
  | Near_unsatisfiable -> "near-unsatisfiable"

let pp fmt m =
  Format.fprintf fmt "GNB{sat=%a unsat=%a prior=%.2f}" Gaussian.pp m.sat Gaussian.pp
    m.unsat m.prior_sat
