(** Descriptive statistics over float arrays.

    All functions raise [Invalid_argument] on empty input unless noted. *)

val mean : float array -> float
val variance : float array -> float
(** Population variance (divides by [n]). *)

val std : float array -> float
val geomean : float array -> float
(** Geometric mean; requires strictly positive entries. *)

val median : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0,100], linear interpolation. *)

val min : float array -> float
val max : float array -> float
val sum : float array -> float

val correlation : float array -> float array -> float
(** Pearson correlation of two same-length arrays. *)

type histogram = { lo : float; hi : float; counts : int array }

val histogram : bins:int -> float array -> histogram
(** Equal-width histogram over the data's own range. *)

val pp_histogram : Format.formatter -> histogram -> unit
(** ASCII rendering, one bar line per bin. *)
