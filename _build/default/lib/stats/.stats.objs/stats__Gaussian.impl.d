lib/stats/gaussian.ml: Descriptive Float Format
