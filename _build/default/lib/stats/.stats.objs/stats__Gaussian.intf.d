lib/stats/gaussian.mli: Format
