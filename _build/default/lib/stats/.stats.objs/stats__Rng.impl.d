lib/stats/rng.ml: Array Float Fun Random
