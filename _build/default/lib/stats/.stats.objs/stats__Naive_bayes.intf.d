lib/stats/naive_bayes.mli: Format Gaussian
