lib/stats/naive_bayes.ml: Array Float Format Gaussian
