lib/stats/descriptive.mli: Format
