lib/stats/rng.mli:
