lib/stats/descriptive.ml: Array Float Format Stdlib String
