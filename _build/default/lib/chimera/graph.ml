type t = { rows : int; cols : int }

type orientation = Vertical | Horizontal

type qubit_coords = { row : int; col : int; orientation : orientation; index : int }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Chimera.Graph.create";
  { rows; cols }

let standard_2000q () = create ~rows:16 ~cols:16
let rows t = t.rows
let cols t = t.cols
let num_qubits t = t.rows * t.cols * 8

let num_couplers t =
  (* 16 in-cell + 4 down per non-last row + 4 right per non-last col *)
  (t.rows * t.cols * 16) + ((t.rows - 1) * t.cols * 4) + (t.rows * (t.cols - 1) * 4)

let id_of_coords t { row; col; orientation; index } =
  if row < 0 || row >= t.rows || col < 0 || col >= t.cols || index < 0 || index > 3 then
    invalid_arg "Chimera.Graph.id_of_coords";
  (((row * t.cols) + col) * 8) + (match orientation with Vertical -> 0 | Horizontal -> 4) + index

let coords_of_id t id =
  if id < 0 || id >= num_qubits t then invalid_arg "Chimera.Graph.coords_of_id";
  let cell = id / 8 and rest = id mod 8 in
  {
    row = cell / t.cols;
    col = cell mod t.cols;
    orientation = (if rest < 4 then Vertical else Horizontal);
    index = rest mod 4;
  }

let adjacent t a b =
  if a = b then false
  else
    let ca = coords_of_id t a and cb = coords_of_id t b in
    match (ca.orientation, cb.orientation) with
    | Vertical, Horizontal | Horizontal, Vertical ->
        (* in-cell K4,4 coupler *)
        ca.row = cb.row && ca.col = cb.col
    | Vertical, Vertical ->
        ca.col = cb.col && ca.index = cb.index && abs (ca.row - cb.row) = 1
    | Horizontal, Horizontal ->
        ca.row = cb.row && ca.index = cb.index && abs (ca.col - cb.col) = 1

let neighbors t id =
  let c = coords_of_id t id in
  let acc = ref [] in
  let push coords = acc := id_of_coords t coords :: !acc in
  (match c.orientation with
  | Vertical ->
      for k = 0 to 3 do
        push { c with orientation = Horizontal; index = k }
      done;
      if c.row > 0 then push { c with row = c.row - 1 };
      if c.row < t.rows - 1 then push { c with row = c.row + 1 }
  | Horizontal ->
      for k = 0 to 3 do
        push { c with orientation = Vertical; index = k }
      done;
      if c.col > 0 then push { c with col = c.col - 1 };
      if c.col < t.cols - 1 then push { c with col = c.col + 1 });
  List.rev !acc

let num_vertical_lines t = t.cols * 4
let num_horizontal_lines t = t.rows * 4
let vline_col _ vl = vl / 4
let hline_row _ hl = hl / 4

let vertical_line_qubits t vl =
  if vl < 0 || vl >= num_vertical_lines t then invalid_arg "vertical_line_qubits";
  let col = vl / 4 and index = vl mod 4 in
  List.init t.rows (fun row -> id_of_coords t { row; col; orientation = Vertical; index })

let horizontal_line_qubits t hl =
  if hl < 0 || hl >= num_horizontal_lines t then invalid_arg "horizontal_line_qubits";
  let row = hl / 4 and index = hl mod 4 in
  List.init t.cols (fun col -> id_of_coords t { row; col; orientation = Horizontal; index })

let vline_of_qubit t id =
  let c = coords_of_id t id in
  match c.orientation with Vertical -> Some ((c.col * 4) + c.index) | Horizontal -> None

let hline_of_qubit t id =
  let c = coords_of_id t id in
  match c.orientation with Horizontal -> Some ((c.row * 4) + c.index) | Vertical -> None

let crossing t ~vline ~hline =
  let col = vline / 4 and vk = vline mod 4 in
  let row = hline / 4 and hk = hline mod 4 in
  ( id_of_coords t { row; col; orientation = Vertical; index = vk },
    id_of_coords t { row; col; orientation = Horizontal; index = hk } )

let iter_couplers t f =
  for id = 0 to num_qubits t - 1 do
    List.iter (fun nb -> if nb > id then f id nb) (neighbors t id)
  done

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph chimera {\n";
  iter_couplers t (fun a b -> Buffer.add_string buf (Printf.sprintf "  q%d -- q%d;\n" a b));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
