(** Chimera hardware graph (D-Wave 2000Q topology, paper §II-D and Fig. 3).

    A [rows × cols] grid of cells; each cell holds 4 {e vertical} and 4
    {e horizontal} qubits forming a complete bipartite K4,4 through the
    cell's internal ("diagonal") couplers.  Same-index vertical qubits of
    vertically adjacent cells are coupled, chaining into {e vertical lines}
    that span a column; likewise horizontal qubits chain into {e horizontal
    lines} spanning a row.  D-Wave 2000Q is the 16×16 instance (2048
    qubits).

    Qubit ids are dense integers; lines have their own dense ids:
    vertical line [(col, k)] has id [col*4 + k], horizontal line [(row, k)]
    id [row*4 + k]. *)

type t

type orientation = Vertical | Horizontal

type qubit_coords = { row : int; col : int; orientation : orientation; index : int }
(** [index] is the 0–3 position within the cell's vertical or horizontal
    group. *)

val create : rows:int -> cols:int -> t
val standard_2000q : unit -> t
(** The 16×16 D-Wave 2000Q graph. *)

val rows : t -> int
val cols : t -> int
val num_qubits : t -> int
val num_couplers : t -> int

val id_of_coords : t -> qubit_coords -> int
val coords_of_id : t -> int -> qubit_coords

val adjacent : t -> int -> int -> bool
(** Whether a coupler exists between two qubits. *)

val neighbors : t -> int -> int list

(** {2 Line abstraction (used by the HyQSAT embedder)} *)

val num_vertical_lines : t -> int
(** [cols × 4]. *)

val num_horizontal_lines : t -> int
(** [rows × 4]. *)

val vertical_line_qubits : t -> int -> int list
(** Qubits of a vertical line, top row first. *)

val horizontal_line_qubits : t -> int -> int list
(** Qubits of a horizontal line, leftmost column first. *)

val vline_of_qubit : t -> int -> int option
(** The vertical line containing a qubit ([None] for horizontal qubits). *)

val hline_of_qubit : t -> int -> int option
val vline_col : t -> int -> int
(** Column of a vertical line. *)

val hline_row : t -> int -> int
(** Row of a horizontal line. *)

val crossing : t -> vline:int -> hline:int -> int * int
(** [(vqubit, hqubit)] at the unique cell where the two lines intersect;
    these two qubits are always coupled. *)

val iter_couplers : t -> (int -> int -> unit) -> unit
val to_dot : t -> string
(** Graphviz rendering (small graphs only — debugging aid). *)
