lib/chimera/graph.ml: Buffer List Printf
