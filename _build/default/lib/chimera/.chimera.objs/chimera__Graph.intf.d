lib/chimera/graph.mli:
