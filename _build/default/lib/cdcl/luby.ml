(* classic MiniSAT formulation, 0-based internally *)
let luby i =
  if i < 1 then invalid_arg "Luby.luby";
  let x = ref (i - 1) in
  let size = ref 1 and seq = ref 0 in
  while !size < !x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let restart_limit ~base k = base * luby k
