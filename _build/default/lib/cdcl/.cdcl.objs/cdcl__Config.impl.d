lib/cdcl/config.ml:
