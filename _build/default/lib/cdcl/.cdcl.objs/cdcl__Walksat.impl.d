lib/cdcl/walksat.ml: Array List Sat Stats
