lib/cdcl/dpll.mli: Sat Solver
