lib/cdcl/var_heap.mli:
