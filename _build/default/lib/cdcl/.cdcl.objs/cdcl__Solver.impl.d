lib/cdcl/solver.ml: Array Config Float Hashtbl List Luby Queue Sat Stats Var_heap Vec
