lib/cdcl/vec.mli:
