lib/cdcl/vec.ml: Array List Stdlib
