lib/cdcl/solver.mli: Config Sat
