lib/cdcl/luby.mli:
