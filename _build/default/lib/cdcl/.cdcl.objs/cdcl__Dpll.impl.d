lib/cdcl/dpll.ml: Array List Sat Solver
