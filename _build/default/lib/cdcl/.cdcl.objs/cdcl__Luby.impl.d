lib/cdcl/luby.ml:
