lib/cdcl/config.mli:
