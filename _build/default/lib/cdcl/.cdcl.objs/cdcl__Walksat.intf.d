lib/cdcl/walksat.mli: Sat Stats
