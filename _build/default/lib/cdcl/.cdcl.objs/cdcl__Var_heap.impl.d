lib/cdcl/var_heap.ml: Array Fun
