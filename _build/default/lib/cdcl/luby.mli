(** The Luby restart sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)

val luby : int -> int
(** [luby i] is the [i]-th element of the sequence, [i >= 1]. *)

val restart_limit : base:int -> int -> int
(** [restart_limit ~base k] is the conflict budget of the [k]-th restart
    (1-based): [base * luby k]. *)
