(** Solver configuration.

    Two presets model the paper's two classical baselines:
    {!minisat_like} (VSIDS + Luby restarts, MiniSAT 2.2 defaults) and
    {!kissat_like} (CHB-style bandit heuristic + EMA-driven restarts, the
    ingredients the paper attributes to KisSAT [14], [40]). *)

type heuristic =
  | Vsids  (** exponential VSIDS with activity decay *)
  | Chb  (** conflict-history-based multi-armed-bandit scores *)

type restart_policy =
  | Luby_restarts of int  (** base conflict interval *)
  | Ema_restarts of { fast : float; slow : float; margin : float }
      (** restart when fast LBD average exceeds [margin] × slow average *)
  | No_restarts

type t = {
  heuristic : heuristic;
  restart : restart_policy;
  var_decay : float;  (** VSIDS activity decay (e.g. 0.95) *)
  clause_decay : float;  (** learnt-clause activity decay *)
  phase_saving : bool;
  random_polarity_freq : float;  (** probability of a random polarity pick *)
  reduce_db : bool;  (** periodically delete weak learnt clauses *)
  learntsize_factor : float;  (** initial learnt budget = factor × #clauses *)
  log_proof : bool;  (** record a DRAT proof ({!Solver.proof}) *)
  seed : int;
}

val minisat_like : t
val kissat_like : t
val default : t
(** [minisat_like]. *)

val with_seed : int -> t -> t
val with_proof_logging : t -> t
