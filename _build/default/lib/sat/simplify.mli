(** CNF preprocessing: the standard simplifications every production solver
    runs before search.

    Applied to fixpoint, in order: tautology and duplicate removal, unit
    propagation, pure-literal elimination, and (optionally) clause
    subsumption.  The result is equisatisfiable with the input; a
    {!reconstruction} maps any model of the simplified formula back to a
    model of the original. *)

type fixed = (Lit.var * bool) list
(** Variables whose value was decided during preprocessing. *)

type reconstruction = {
  fixed : fixed;  (** forced by units / chosen for pure literals *)
  num_vars : int;  (** of the original formula *)
}

type outcome =
  | Simplified of Cnf.t * reconstruction
  | Unsat_by_simplification
      (** a conflict between unit clauses was found during preprocessing *)

val simplify : ?subsumption:bool -> Cnf.t -> outcome
(** [subsumption] (default [true]) also removes clauses subsumed by another
    clause.  The simplified formula keeps the original variable numbering
    (eliminated variables simply no longer occur). *)

val reconstruct : reconstruction -> bool array -> bool array
(** Extend a model of the simplified formula to the original variables. *)

val statistics : Cnf.t -> Cnf.t -> string
(** Human-readable before/after summary. *)
