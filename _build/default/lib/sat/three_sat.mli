(** K-SAT to 3-SAT conversion (HyQSAT paper §VII-B).

    A clause [l1 ∨ ... ∨ lk] with [k > 3] is split with [k-3] fresh auxiliary
    variables into an equisatisfiable chain
    [l1 ∨ l2 ∨ a1], [¬a1 ∨ l3 ∨ a2], ..., [¬a_{k-3} ∨ l_{k-1} ∨ lk]. *)

type mapping = { original_vars : int; aux_vars : int }
(** [original_vars] variables come first; the [aux_vars] fresh chain
    variables occupy indices [original_vars ..]. *)

val convert : Cnf.t -> Cnf.t * mapping
(** [convert f] returns an equisatisfiable 3-SAT formula and the variable
    mapping.  Clauses of size ≤ 3 are kept verbatim. *)

val project_model : mapping -> bool array -> bool array
(** Restrict a model of the converted formula to the original variables. *)

val aux_count_for_clause : int -> int
(** [aux_count_for_clause k] is the number of auxiliary variables introduced
    for a clause of size [k] (the paper's example: a 26-literal clause needs
    — in its direct QUBO encoding — 24 auxiliaries; the chain split here
    needs [k - 3]). *)
