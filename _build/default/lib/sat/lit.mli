(** Propositional literals.

    A variable is a non-negative integer [0 .. n-1].  A literal packs a
    variable and a sign into a single integer using the MiniSAT convention
    [lit = 2 * var + (negated ? 1 : 0)], which makes literals cheap array
    indices and negation a single [lxor]. *)

type var = int
(** A propositional variable, [0]-based. *)

type t = int
(** A literal.  Use the constructors below rather than raw arithmetic. *)

val make : var -> bool -> t
(** [make v sign] is the literal over variable [v]; [sign = true] gives the
    positive literal [v], [sign = false] gives [¬v]. *)

val pos : var -> t
(** [pos v] is the positive literal of [v]. *)

val neg_of : var -> t
(** [neg_of v] is the negative literal [¬v]. *)

val var : t -> var
(** [var l] is the variable underlying [l]. *)

val negate : t -> t
(** [negate l] flips the sign of [l]. *)

val is_pos : t -> bool
(** [is_pos l] is [true] iff [l] is a positive literal. *)

val is_neg : t -> bool
(** [is_neg l] is [true] iff [l] is a negated literal. *)

val to_dimacs : t -> int
(** [to_dimacs l] is the 1-based signed integer DIMACS encoding of [l]. *)

val of_dimacs : int -> t
(** [of_dimacs i] parses a non-zero DIMACS literal.
    @raise Invalid_argument on [0]. *)

val compare : t -> t -> int
(** Total order on literals (variable-major, positive first). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints [x3] or [~x3]. *)

val to_string : t -> string
