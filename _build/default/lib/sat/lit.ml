type var = int
type t = int

let make v sign =
  assert (v >= 0);
  (v * 2) + if sign then 0 else 1

let pos v = make v true
let neg_of v = make v false
let var l = l lsr 1
let negate l = l lxor 1
let is_pos l = l land 1 = 0
let is_neg l = l land 1 = 1
let to_dimacs l = if is_pos l then var l + 1 else -(var l + 1)

let of_dimacs i =
  if i = 0 then invalid_arg "Lit.of_dimacs: zero"
  else if i > 0 then pos (i - 1)
  else neg_of (-i - 1)

let compare = Int.compare
let equal = Int.equal
let to_string l = if is_pos l then Printf.sprintf "x%d" (var l) else Printf.sprintf "~x%d" (var l)
let pp fmt l = Format.pp_print_string fmt (to_string l)
