(** Partial and total truth assignments. *)

type value = True | False | Unassigned

val value_of_bool : bool -> value
val bool_of_value : value -> bool option

type t
(** A mutable partial assignment over a fixed variable universe. *)

val create : int -> t
(** [create n] is the everywhere-unassigned assignment over [n] variables. *)

val of_bools : bool array -> t
(** Total assignment from a boolean array. *)

val num_vars : t -> int
val value : t -> Lit.var -> value
val set : t -> Lit.var -> bool -> unit
val unset : t -> Lit.var -> unit
val copy : t -> t

val lit_value : t -> Lit.t -> value
(** Value of a literal under the assignment ([¬x] is true when [x] is false). *)

val satisfies_clause : t -> Clause.t -> bool
(** [true] iff some literal of the clause is assigned true. *)

val falsifies_clause : t -> Clause.t -> bool
(** [true] iff every literal of the clause is assigned false. *)

val clause_status : t -> Clause.t -> [ `Satisfied | `Falsified | `Unit of Lit.t | `Unresolved ]
(** Classifies the clause: satisfied, falsified, unit (one unassigned literal,
    rest false), or unresolved. *)

val satisfies : t -> Cnf.t -> bool
(** [true] iff every clause of the formula is satisfied (requires the touched
    variables to be assigned). *)

val num_unsatisfied : t -> Cnf.t -> int
(** Number of clauses not currently satisfied (falsified or undecided). *)

val to_bools : t -> default:bool -> bool array
(** Totalise, mapping unassigned variables to [default]. *)

val assigned_vars : t -> Lit.var list
val pp : Format.formatter -> t -> unit
