lib/sat/cnf.mli: Clause Format Lit
