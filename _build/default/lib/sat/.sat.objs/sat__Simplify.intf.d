lib/sat/simplify.mli: Cnf Lit
