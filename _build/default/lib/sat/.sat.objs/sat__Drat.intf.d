lib/sat/drat.mli: Cnf Lit
