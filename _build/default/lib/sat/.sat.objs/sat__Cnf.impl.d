lib/sat/cnf.ml: Array Clause Format List Lit Printf
