lib/sat/assignment.ml: Array Clause Cnf Format List Lit
