lib/sat/three_sat.mli: Cnf
