lib/sat/simplify.ml: Array Assignment Clause Cnf List Lit Printf
