lib/sat/cardinality.ml: Array Clause List Lit
