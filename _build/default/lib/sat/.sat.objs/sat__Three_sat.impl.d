lib/sat/three_sat.ml: Array Clause Cnf List Lit
