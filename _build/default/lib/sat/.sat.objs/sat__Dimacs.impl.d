lib/sat/dimacs.ml: Buffer Clause Cnf Fun List Lit Printf String
