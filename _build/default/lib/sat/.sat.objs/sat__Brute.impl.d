lib/sat/brute.ml: Array Assignment Cnf Printf
