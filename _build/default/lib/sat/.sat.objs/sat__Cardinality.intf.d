lib/sat/cardinality.mli: Clause Lit
