lib/sat/clause.ml: Array Format Int List Lit
