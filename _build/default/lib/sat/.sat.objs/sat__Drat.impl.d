lib/sat/drat.ml: Assignment Buffer Clause Cnf List Lit Printf String
