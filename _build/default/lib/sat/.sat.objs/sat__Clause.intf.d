lib/sat/clause.mli: Format Lit
