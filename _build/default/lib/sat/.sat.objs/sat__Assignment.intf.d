lib/sat/assignment.mli: Clause Cnf Format Lit
