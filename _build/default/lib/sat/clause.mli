(** Disjunctive clauses over literals.

    A clause is an immutable array of literals.  Construction normalises the
    clause: duplicate literals are removed and literals are sorted.  A clause
    containing both [l] and [¬l] is a tautology; [make] keeps it as-is but
    {!is_tautology} detects it. *)

type t = private Lit.t array

val make : Lit.t list -> t
(** [make lits] builds a clause, deduplicating and sorting [lits]. *)

val of_array : Lit.t array -> t
(** Like {!make}, from an array (the array is copied). *)

val of_dimacs : int list -> t
(** [of_dimacs ints] builds a clause from signed DIMACS literals. *)

val lits : t -> Lit.t list
val to_array : t -> Lit.t array
val size : t -> int
val is_empty : t -> bool

val is_tautology : t -> bool
(** [true] iff the clause contains a literal and its negation. *)

val mem : Lit.t -> t -> bool
val vars : t -> Lit.var list
(** Sorted distinct variables of the clause. *)

val shares_var : t -> t -> bool
(** [shares_var c1 c2] is [true] iff the clauses mention a common variable. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
