(** Conjunctive-normal-form formulas.

    A CNF formula is a number of variables and an array of clauses.  Formulas
    are immutable; solvers copy clauses into their own arenas. *)

type t = private { num_vars : int; clauses : Clause.t array }

val make : num_vars:int -> Clause.t list -> t
(** [make ~num_vars clauses] builds a formula.
    @raise Invalid_argument if a clause mentions a variable [>= num_vars]. *)

val of_arrays : num_vars:int -> Clause.t array -> t

val num_vars : t -> int
val num_clauses : t -> int
val clauses : t -> Clause.t list
val clause : t -> int -> Clause.t
(** [clause f i] is the [i]-th clause. *)

val iter_clauses : (int -> Clause.t -> unit) -> t -> unit
val fold_clauses : ('a -> int -> Clause.t -> 'a) -> 'a -> t -> 'a

val max_clause_size : t -> int
(** Size of the largest clause; [0] for an empty formula. *)

val is_3sat : t -> bool
(** [true] iff every clause has at most three literals. *)

val clause_to_var_ratio : t -> float
(** [m/n]; the hardness-controlling ratio of random 3-SAT. *)

val clauses_of_var : t -> Lit.var -> int list
(** [clauses_of_var f v] are the indices of clauses mentioning [v],
    computed eagerly once per formula (memoised). *)

val append : t -> Clause.t list -> t
(** [append f cs] adds clauses (same variable universe). *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
