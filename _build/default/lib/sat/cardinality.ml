type t = { clauses : Clause.t list; num_vars : int }

let at_most_k ~num_vars lits ~k =
  if k < 0 then invalid_arg "Cardinality.at_most_k: negative k";
  let lits = Array.of_list lits in
  let n = Array.length lits in
  if k >= n then { clauses = []; num_vars }
  else if k = 0 then
    { clauses = Array.to_list (Array.map (fun l -> Clause.make [ Lit.negate l ]) lits); num_vars }
  else begin
    (* registers s i j (0-based): "at least j+1 of lits[0..i] are true" *)
    let s i j = num_vars + (i * k) + j in
    let clauses = ref [] in
    let emit lits = clauses := Clause.make lits :: !clauses in
    (* l0 -> s00 *)
    emit [ Lit.negate lits.(0); Lit.pos (s 0 0) ];
    for j = 1 to k - 1 do
      emit [ Lit.neg_of (s 0 j) ]
    done;
    for i = 1 to n - 1 do
      if i < n - 1 then begin
        (* carry: s_{i-1,j} -> s_{i,j} *)
        for j = 0 to k - 1 do
          emit [ Lit.neg_of (s (i - 1) j); Lit.pos (s i j) ]
        done;
        (* increment: l_i ∧ s_{i-1,j-1} -> s_{i,j};  l_i -> s_{i,0} *)
        emit [ Lit.negate lits.(i); Lit.pos (s i 0) ];
        for j = 1 to k - 1 do
          emit [ Lit.negate lits.(i); Lit.neg_of (s (i - 1) (j - 1)); Lit.pos (s i j) ]
        done
      end;
      (* overflow: l_i ∧ s_{i-1,k-1} is forbidden *)
      emit [ Lit.negate lits.(i); Lit.neg_of (s (i - 1) (k - 1)) ]
    done;
    { clauses = List.rev !clauses; num_vars = num_vars + ((n - 1) * k) }
  end

let at_least_k ~num_vars lits ~k =
  let n = List.length lits in
  if k <= 0 then { clauses = []; num_vars }
  else if k > n then { clauses = [ Clause.make [] ]; num_vars }
  else at_most_k ~num_vars (List.map Lit.negate lits) ~k:(n - k)

let exactly_k ~num_vars lits ~k =
  let upper = at_most_k ~num_vars lits ~k in
  let lower = at_least_k ~num_vars:upper.num_vars lits ~k in
  { clauses = upper.clauses @ lower.clauses; num_vars = lower.num_vars }
