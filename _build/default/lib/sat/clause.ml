type t = Lit.t array

let of_array arr =
  let l = Array.to_list arr in
  let l = List.sort_uniq Lit.compare l in
  Array.of_list l

let make lits = of_array (Array.of_list lits)
let of_dimacs ints = make (List.map Lit.of_dimacs ints)
let lits c = Array.to_list c
let to_array c = Array.copy c
let size = Array.length
let is_empty c = Array.length c = 0

let is_tautology c =
  (* literals are sorted, so l and ¬l are adjacent *)
  let n = Array.length c in
  let rec go i = i + 1 < n && (Lit.var c.(i) = Lit.var c.(i + 1) || go (i + 1)) in
  go 0

let mem l c = Array.exists (Lit.equal l) c
let vars c = List.sort_uniq Int.compare (List.map Lit.var (lits c))

let shares_var c1 c2 =
  Array.exists (fun l1 -> Array.exists (fun l2 -> Lit.var l1 = Lit.var l2) c2) c1

let compare c1 c2 =
  let n = Int.compare (Array.length c1) (Array.length c2) in
  if n <> 0 then n
  else
    let rec go i =
      if i >= Array.length c1 then 0
      else
        let d = Lit.compare c1.(i) c2.(i) in
        if d <> 0 then d else go (i + 1)
    in
    go 0

let equal c1 c2 = compare c1 c2 = 0

let pp fmt c =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " \\/ ") Lit.pp)
    (lits c)

let to_string c = Format.asprintf "%a" pp c
