type value = True | False | Unassigned

let value_of_bool b = if b then True else False
let bool_of_value = function True -> Some true | False -> Some false | Unassigned -> None

type t = value array

let create n = Array.make n Unassigned
let of_bools bools = Array.map value_of_bool bools
let num_vars = Array.length
let value t v = t.(v)
let set t v b = t.(v) <- value_of_bool b
let unset t v = t.(v) <- Unassigned
let copy = Array.copy

let lit_value t l =
  match t.(Lit.var l) with
  | Unassigned -> Unassigned
  | True -> if Lit.is_pos l then True else False
  | False -> if Lit.is_pos l then False else True

let satisfies_clause t c =
  Array.exists (fun l -> lit_value t l = True) (c : Clause.t :> Lit.t array)

let falsifies_clause t c =
  Array.for_all (fun l -> lit_value t l = False) (c : Clause.t :> Lit.t array)

let clause_status t c =
  let unassigned = ref None in
  let n_unassigned = ref 0 in
  let sat = ref false in
  Array.iter
    (fun l ->
      match lit_value t l with
      | True -> sat := true
      | False -> ()
      | Unassigned ->
          incr n_unassigned;
          unassigned := Some l)
    (c : Clause.t :> Lit.t array);
  if !sat then `Satisfied
  else
    match (!n_unassigned, !unassigned) with
    | 0, _ -> `Falsified
    | 1, Some l -> `Unit l
    | _ -> `Unresolved

let satisfies t f = List.for_all (satisfies_clause t) (Cnf.clauses f)

let num_unsatisfied t f =
  List.fold_left (fun n c -> if satisfies_clause t c then n else n + 1) 0 (Cnf.clauses f)

let to_bools t ~default =
  Array.map (function True -> true | False -> false | Unassigned -> default) t

let assigned_vars t =
  let acc = ref [] in
  Array.iteri (fun v x -> if x <> Unassigned then acc := v :: !acc) t;
  List.rev !acc

let pp fmt t =
  Format.fprintf fmt "@[<h>";
  Array.iteri
    (fun v x ->
      match x with
      | Unassigned -> ()
      | True -> Format.fprintf fmt "x%d=1 " v
      | False -> Format.fprintf fmt "x%d=0 " v)
    t;
  Format.fprintf fmt "@]"
