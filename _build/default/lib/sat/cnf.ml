type t = { num_vars : int; clauses : Clause.t array }

let check_bounds num_vars clauses =
  Array.iter
    (fun c ->
      Array.iter
        (fun l ->
          if Lit.var l >= num_vars || Lit.var l < 0 then
            invalid_arg
              (Printf.sprintf "Cnf.make: literal %s out of range (num_vars=%d)"
                 (Lit.to_string l) num_vars))
        (c : Clause.t :> Lit.t array))
    clauses

let of_arrays ~num_vars clauses =
  check_bounds num_vars clauses;
  { num_vars; clauses }

let make ~num_vars clauses = of_arrays ~num_vars (Array.of_list clauses)
let num_vars f = f.num_vars
let num_clauses f = Array.length f.clauses
let clauses f = Array.to_list f.clauses
let clause f i = f.clauses.(i)
let iter_clauses g f = Array.iteri g f.clauses

let fold_clauses g acc f =
  let acc = ref acc in
  Array.iteri (fun i c -> acc := g !acc i c) f.clauses;
  !acc

let max_clause_size f = Array.fold_left (fun m c -> max m (Clause.size c)) 0 f.clauses
let is_3sat f = max_clause_size f <= 3

let clause_to_var_ratio f =
  if f.num_vars = 0 then 0. else float_of_int (num_clauses f) /. float_of_int f.num_vars

(* memoised occurrence lists, keyed on physical formula identity *)
let occ_cache : (t * int list array) option ref = ref None

let clauses_of_var f v =
  let table =
    match !occ_cache with
    | Some (f', tbl) when f' == f -> tbl
    | _ ->
        let tbl = Array.make f.num_vars [] in
        Array.iteri
          (fun i c -> List.iter (fun v -> tbl.(v) <- i :: tbl.(v)) (Clause.vars c))
          f.clauses;
        Array.iteri (fun v l -> tbl.(v) <- List.rev l) tbl;
        occ_cache := Some (f, tbl);
        tbl
  in
  if v < 0 || v >= f.num_vars then invalid_arg "Cnf.clauses_of_var";
  table.(v)

let append f cs = of_arrays ~num_vars:f.num_vars (Array.append f.clauses (Array.of_list cs))

let pp fmt f =
  Format.fprintf fmt "@[<v>cnf %d vars, %d clauses@," f.num_vars (num_clauses f);
  Array.iter (fun c -> Format.fprintf fmt "%a@," Clause.pp c) f.clauses;
  Format.fprintf fmt "@]"

let equal f1 f2 =
  f1.num_vars = f2.num_vars
  && Array.length f1.clauses = Array.length f2.clauses
  && Array.for_all2 Clause.equal f1.clauses f2.clauses
