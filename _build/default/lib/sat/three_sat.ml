type mapping = { original_vars : int; aux_vars : int }

let aux_count_for_clause k = if k <= 3 then 0 else k - 3

let convert f =
  let next = ref (Cnf.num_vars f) in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let out = ref [] in
  let emit c = out := c :: !out in
  List.iter
    (fun c ->
      let lits = Clause.lits c in
      let k = List.length lits in
      if k <= 3 then emit c
      else begin
        (* chain split: (l1 l2 a1) (~a1 l3 a2) ... (~a_{k-3} l_{k-1} lk) *)
        match lits with
        | l1 :: l2 :: rest ->
            let a1 = fresh () in
            emit (Clause.make [ l1; l2; Lit.pos a1 ]);
            let rec go prev_aux = function
              | [ lk1; lk2 ] -> emit (Clause.make [ Lit.neg_of prev_aux; lk1; lk2 ])
              | l :: rest ->
                  let a = fresh () in
                  emit (Clause.make [ Lit.neg_of prev_aux; l; Lit.pos a ]);
                  go a rest
              | [] -> assert false
            in
            go a1 rest
        | _ -> assert false
      end)
    (Cnf.clauses f);
  let cnf = Cnf.make ~num_vars:!next (List.rev !out) in
  (cnf, { original_vars = Cnf.num_vars f; aux_vars = !next - Cnf.num_vars f })

let project_model mapping model = Array.sub model 0 mapping.original_vars
