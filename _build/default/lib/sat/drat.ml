type step = Add of Lit.t list | Delete of Lit.t list

type t = step list

let to_string proof =
  let buf = Buffer.create 1024 in
  List.iter
    (fun step ->
      let lits, prefix =
        match step with Add l -> (l, "") | Delete l -> (l, "d ")
      in
      Buffer.add_string buf prefix;
      List.iter (fun l -> Buffer.add_string buf (string_of_int (Lit.to_dimacs l) ^ " ")) lits;
      Buffer.add_string buf "0\n")
    proof;
  Buffer.contents buf

let parse_string s =
  let steps = ref [] in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" then begin
           let is_delete = String.length line > 2 && String.sub line 0 2 = "d " in
           let body = if is_delete then String.sub line 2 (String.length line - 2) else line in
           let ints =
             String.split_on_char ' ' body
             |> List.filter (fun t -> t <> "")
             |> List.map (fun t ->
                    try int_of_string t with Failure _ -> failwith ("Drat.parse: " ^ t))
           in
           match List.rev ints with
           | 0 :: rest ->
               let lits = List.rev_map Lit.of_dimacs rest in
               steps := (if is_delete then Delete lits else Add lits) :: !steps
           | _ -> failwith "Drat.parse: clause not 0-terminated"
         end);
  List.rev !steps

(* ------------------------------------------------------------------ *)
(* RUP checking with a simple counting propagator                      *)

module Db = struct
  (* clause database for the checker: multiset of literal lists *)
  type db = { mutable clauses : Lit.t list list }

  let of_cnf f = { clauses = List.map Clause.lits (Cnf.clauses f) }
  let add db lits = db.clauses <- lits :: db.clauses

  let delete db lits =
    let target = List.sort Lit.compare lits in
    let rec remove = function
      | [] -> [] (* deleting an absent clause is a no-op, as in drat-trim *)
      | c :: rest ->
          if List.sort Lit.compare c = target then rest else c :: remove rest
    in
    db.clauses <- remove db.clauses

  (* unit propagation from assumptions; true iff a conflict arises *)
  let propagates_to_conflict db ~assumed num_vars =
    let value = Assignment.create num_vars in
    let conflict = ref false in
    (try
       List.iter
         (fun l ->
           match Assignment.lit_value value l with
           | Assignment.False -> raise Exit
           | _ -> Assignment.set value (Lit.var l) (Lit.is_pos l))
         assumed
     with Exit -> conflict := true);
    let changed = ref true in
    while (not !conflict) && !changed do
      changed := false;
      List.iter
        (fun c ->
          if not !conflict then begin
            let unassigned = ref [] and satisfied = ref false in
            List.iter
              (fun l ->
                match Assignment.lit_value value l with
                | Assignment.True -> satisfied := true
                | Assignment.False -> ()
                | Assignment.Unassigned -> unassigned := l :: !unassigned)
              c;
            if not !satisfied then
              match !unassigned with
              | [] -> conflict := true
              | [ l ] ->
                  Assignment.set value (Lit.var l) (Lit.is_pos l);
                  changed := true
              | _ -> ()
          end)
        db.clauses
    done;
    !conflict
end

let check_general ~require_empty f proof =
  let num_vars = Cnf.num_vars f in
  let db = Db.of_cnf f in
  let derived_empty = ref false in
  let rec go i = function
    | [] ->
        if (not require_empty) || !derived_empty then Ok ()
        else Error "proof does not derive the empty clause"
    | Add lits :: rest ->
        let assumed = List.map Lit.negate lits in
        if Db.propagates_to_conflict db ~assumed num_vars then begin
          if lits = [] then derived_empty := true;
          Db.add db lits;
          go (i + 1) rest
        end
        else Error (Printf.sprintf "step %d: clause is not RUP" i)
    | Delete lits :: rest ->
        Db.delete db lits;
        go (i + 1) rest
  in
  go 0 proof

let check f proof = check_general ~require_empty:true f proof
let check_steps f proof = check_general ~require_empty:false f proof
