type fixed = (Lit.var * bool) list

type reconstruction = { fixed : fixed; num_vars : int }

type outcome =
  | Simplified of Cnf.t * reconstruction
  | Unsat_by_simplification

exception Conflict

(* working state: a partial assignment and the remaining clauses as sorted
   literal arrays *)
type state = {
  value : Assignment.t;
  mutable clauses : Clause.t list;
  mutable fixed_rev : fixed;
}

let lit_value st l = Assignment.lit_value st.value l

let assign st v b =
  match Assignment.value st.value v with
  | Assignment.Unassigned ->
      Assignment.set st.value v b;
      st.fixed_rev <- (v, b) :: st.fixed_rev
  | Assignment.True -> if not b then raise Conflict
  | Assignment.False -> if b then raise Conflict

(* one normalisation pass: drop satisfied clauses, strip false literals,
   propagate the units that appear; returns whether anything changed *)
let normalise st =
  let changed = ref false in
  let keep =
    List.filter_map
      (fun c ->
        if Array.exists (fun l -> lit_value st l = Assignment.True) (c : Clause.t :> Lit.t array)
        then begin
          changed := true;
          None
        end
        else begin
          let remaining =
            List.filter (fun l -> lit_value st l <> Assignment.False) (Clause.lits c)
          in
          if List.length remaining < Clause.size c then changed := true;
          match remaining with
          | [] -> raise Conflict
          | [ l ] ->
              assign st (Lit.var l) (Lit.is_pos l);
              changed := true;
              None
          | _ -> Some (Clause.make remaining)
        end)
      st.clauses
  in
  st.clauses <- keep;
  !changed

(* pure literals: a variable occurring with a single polarity can be fixed to
   that polarity, satisfying all its clauses *)
let pure_literals st ~num_vars =
  let pos = Array.make num_vars false and neg = Array.make num_vars false in
  List.iter
    (fun c ->
      List.iter
        (fun l -> if Lit.is_pos l then pos.(Lit.var l) <- true else neg.(Lit.var l) <- true)
        (Clause.lits c))
    st.clauses;
  let changed = ref false in
  for v = 0 to num_vars - 1 do
    if Assignment.value st.value v = Assignment.Unassigned then
      if pos.(v) && not neg.(v) then begin
        assign st v true;
        changed := true
      end
      else if neg.(v) && not pos.(v) then begin
        assign st v false;
        changed := true
      end
  done;
  !changed

(* naive subsumption: a clause contained in another replaces it.  Clauses
   hold sorted literal arrays, so containment is a linear merge. *)
let subsumes (c : Clause.t) (d : Clause.t) =
  let a = (c : Clause.t :> Lit.t array) and b = (d : Clause.t :> Lit.t array) in
  let na = Array.length a and nb = Array.length b in
  na <= nb
  &&
  let rec go i j =
    if i >= na then true
    else if j >= nb then false
    else
      let cmp = Lit.compare a.(i) b.(j) in
      if cmp = 0 then go (i + 1) (j + 1) else if cmp > 0 then go i (j + 1) else false
  in
  go 0 0

let remove_subsumed clauses =
  let arr = Array.of_list clauses in
  Array.sort (fun c d -> compare (Clause.size c) (Clause.size d)) arr;
  let n = Array.length arr in
  let dead = Array.make n false in
  for i = 0 to n - 1 do
    if not dead.(i) then
      for j = i + 1 to n - 1 do
        if (not dead.(j)) && subsumes arr.(i) arr.(j) then dead.(j) <- true
      done
  done;
  let out = ref [] in
  for i = n - 1 downto 0 do
    if not dead.(i) then out := arr.(i) :: !out
  done;
  !out

let simplify ?(subsumption = true) f =
  let num_vars = Cnf.num_vars f in
  let st =
    {
      value = Assignment.create num_vars;
      clauses = List.filter (fun c -> not (Clause.is_tautology c)) (Cnf.clauses f);
      fixed_rev = [];
    }
  in
  try
    (* dedup relies on Clause.compare's normal form *)
    st.clauses <- List.sort_uniq Clause.compare st.clauses;
    let continue = ref true in
    while !continue do
      let a = normalise st in
      let b = pure_literals st ~num_vars in
      continue := a || b
    done;
    if subsumption then st.clauses <- remove_subsumed st.clauses;
    Simplified
      (Cnf.make ~num_vars st.clauses, { fixed = List.rev st.fixed_rev; num_vars })
  with Conflict -> Unsat_by_simplification

let reconstruct r model =
  if Array.length model <> r.num_vars then invalid_arg "Simplify.reconstruct: model length";
  let out = Array.copy model in
  List.iter (fun (v, b) -> out.(v) <- b) r.fixed;
  out

let statistics before after =
  Printf.sprintf "%d vars, %d clauses -> %d clauses (%d removed)" (Cnf.num_vars before)
    (Cnf.num_clauses before) (Cnf.num_clauses after)
    (Cnf.num_clauses before - Cnf.num_clauses after)
