exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let tokenize s =
  (* splits on any whitespace, dropping comment lines *)
  let out = ref [] in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         let line = String.trim line in
         if String.length line = 0 then ()
         else if line.[0] = 'c' then ()
         else
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.iter (fun tok -> if tok <> "" then out := tok :: !out));
  List.rev !out

let parse_string s =
  match tokenize s with
  | "p" :: "cnf" :: nv :: nc :: rest ->
      let num_vars =
        try int_of_string nv with Failure _ -> fail "bad variable count %S" nv
      in
      let num_clauses =
        try int_of_string nc with Failure _ -> fail "bad clause count %S" nc
      in
      if num_vars < 0 || num_clauses < 0 then fail "negative counts in header";
      let clauses = ref [] in
      let current = ref [] in
      List.iter
        (fun tok ->
          let i = try int_of_string tok with Failure _ -> fail "bad literal %S" tok in
          if i = 0 then begin
            clauses := Clause.of_dimacs (List.rev !current) :: !clauses;
            current := []
          end
          else begin
            if abs i > num_vars then fail "literal %d exceeds declared %d vars" i num_vars;
            current := i :: !current
          end)
        rest;
      if !current <> [] then fail "trailing clause not terminated by 0";
      let clauses = List.rev !clauses in
      if List.length clauses <> num_clauses then
        fail "header declares %d clauses, found %d" num_clauses (List.length clauses);
      Cnf.make ~num_vars clauses
  | "p" :: fmt :: _ -> fail "unsupported format %S (expected cnf)" fmt
  | _ -> fail "missing DIMACS header"

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))

let to_string ?(comments = []) f =
  let buf = Buffer.create 1024 in
  List.iter (fun c -> Buffer.add_string buf ("c " ^ c ^ "\n")) comments;
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" (Cnf.num_vars f) (Cnf.num_clauses f));
  List.iter
    (fun c ->
      List.iter
        (fun l -> Buffer.add_string buf (string_of_int (Lit.to_dimacs l) ^ " "))
        (Clause.lits c);
      Buffer.add_string buf "0\n")
    (Cnf.clauses f);
  Buffer.contents buf

let write_file ?comments path f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?comments f))
