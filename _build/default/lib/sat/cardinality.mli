(** Cardinality constraints as CNF (sequential-counter encoding, Sinz 2005).

    [at_most_k] introduces the register variables [s_{i,j}] ("at least j of
    the first i+1 literals are true") and emits the standard O(n·k) clause
    set.  Used by the exact MAX-SAT solver's linear search and available to
    any encoding that needs counting. *)

type t = {
  clauses : Clause.t list;
  num_vars : int;  (** total variable count after adding the registers *)
}

val at_most_k : num_vars:int -> Lit.t list -> k:int -> t
(** [at_most_k ~num_vars lits ~k] constrains at most [k] of [lits] to be
    true.  Fresh variables are numbered from [num_vars].  [k = 0] forces
    all literals false (no registers needed); [k >= length lits] yields no
    clauses. *)

val at_least_k : num_vars:int -> Lit.t list -> k:int -> t
(** At least [k] true, via [at_most (n-k)] over the negations. *)

val exactly_k : num_vars:int -> Lit.t list -> k:int -> t
