(** Gate-level combinational circuits with Tseitin CNF encoding.

    The substrate for the circuit-fault-analysis, integer-factorisation and
    cryptographic benchmark generators: build a netlist, assert output
    values, convert to CNF (each wire becomes a SAT variable). *)

type wire = int
type t

val create : unit -> t
val fresh_input : t -> wire
val const_true : t -> wire
val const_false : t -> wire

val not_ : t -> wire -> wire
val and_ : t -> wire -> wire -> wire
val or_ : t -> wire -> wire -> wire
val xor_ : t -> wire -> wire -> wire
val nand_ : t -> wire -> wire -> wire
val mux : t -> sel:wire -> wire -> wire -> wire
(** [mux ~sel a b] is [a] when [sel] is false, [b] when true. *)

val assert_true : t -> wire -> unit
val assert_false : t -> wire -> unit
val assert_equal : t -> wire -> wire -> unit
val assert_any : t -> wire list -> unit
(** At least one of the wires is true (a raw CNF clause). *)

val num_wires : t -> int

val full_adder : t -> wire -> wire -> wire -> wire * wire
(** [(sum, carry)] of three input bits. *)

val ripple_adder : t -> wire list -> wire list -> wire list
(** LSB-first addition; the result has one extra carry-out bit. *)

val multiplier : t -> wire list -> wire list -> wire list
(** LSB-first array multiplier, result width = sum of input widths. *)

val to_cnf : t -> Sat.Cnf.t
(** Tseitin encoding of every gate plus the recorded assertions.  Wire [w]
    becomes SAT variable [w].  The result is not necessarily 3-SAT (XOR gates
    produce 4-literal-free clauses but assertions/gates stay ≤ 3 literals
    here); combine with {!Sat.Three_sat.convert} when a strict 3-SAT instance
    is required. *)

val eval : t -> inputs:(wire * bool) list -> (wire -> bool)
(** Reference simulation (ignores assertions); raises [Not_found] for a wire
    whose value is not determined by [inputs]. *)
