(** Uniform random 3-SAT (the SATLIB "UF" family, paper's AI benchmarks).

    Clauses draw three distinct variables uniformly and negate each with
    probability ½.  At the clause-to-variable ratio ≈ 4.26 these instances
    sit at the satisfiability phase transition, which is what makes
    UF150-645 … UF250-1065 hard for CDCL. *)

val generate :
  ?planted:bool -> Stats.Rng.t -> num_vars:int -> num_clauses:int -> Sat.Cnf.t
(** [planted] (default [true], like the "UF = satisfiable uniform" family)
    hides a random assignment and resamples any clause it falsifies, which
    guarantees satisfiability while keeping the uniform clause shape. *)

val uf : Stats.Rng.t -> int -> Sat.Cnf.t
(** [uf rng n] is the standard phase-transition instance over [n] variables
    ([⌈4.3·n⌉] clauses, satisfiable), e.g. [uf rng 150 ≈ UF150-645]. *)
