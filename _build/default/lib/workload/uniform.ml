let random_clause rng ~num_vars =
  let vars = Stats.Rng.sample_without_replacement rng (min 3 num_vars) num_vars in
  Sat.Clause.make (List.map (fun v -> Sat.Lit.make v (Stats.Rng.bool rng)) vars)

let generate ?(planted = true) rng ~num_vars ~num_clauses =
  if num_vars < 3 then invalid_arg "Uniform.generate: need at least 3 variables";
  let hidden = Array.init num_vars (fun _ -> Stats.Rng.bool rng) in
  let satisfied_by_hidden c =
    List.exists
      (fun l -> if Sat.Lit.is_pos l then hidden.(Sat.Lit.var l) else not hidden.(Sat.Lit.var l))
      (Sat.Clause.lits c)
  in
  let rec draw () =
    let c = random_clause rng ~num_vars in
    if planted && not (satisfied_by_hidden c) then draw () else c
  in
  Sat.Cnf.make ~num_vars (List.init num_clauses (fun _ -> draw ()))

let uf rng n =
  generate rng ~num_vars:n ~num_clauses:(int_of_float (ceil (4.3 *. float_of_int n)))
