type wire = int

type gate =
  | Input
  | Const of bool
  | Not of wire
  | And of wire * wire
  | Or of wire * wire
  | Xor of wire * wire
  | Nand of wire * wire

type t = {
  mutable gates : gate list; (* reversed: index num_wires-1 first *)
  mutable n : int;
  mutable assertions : Sat.Clause.t list;
}

let create () = { gates = []; n = 0; assertions = [] }

let add t g =
  let w = t.n in
  t.gates <- g :: t.gates;
  t.n <- t.n + 1;
  w

let fresh_input t = add t Input
let const_true t = add t (Const true)
let const_false t = add t (Const false)
let not_ t a = add t (Not a)
let and_ t a b = add t (And (a, b))
let or_ t a b = add t (Or (a, b))
let xor_ t a b = add t (Xor (a, b))
let nand_ t a b = add t (Nand (a, b))

let mux t ~sel a b =
  (* sel ? b : a  =  (¬sel ∧ a) ∨ (sel ∧ b) *)
  or_ t (and_ t (not_ t sel) a) (and_ t sel b)

let assert_clause t lits = t.assertions <- Sat.Clause.make lits :: t.assertions
let assert_true t w = assert_clause t [ Sat.Lit.pos w ]
let assert_false t w = assert_clause t [ Sat.Lit.neg_of w ]

let assert_any t ws = assert_clause t (List.map Sat.Lit.pos ws)

let assert_equal t a b =
  assert_clause t [ Sat.Lit.neg_of a; Sat.Lit.pos b ];
  assert_clause t [ Sat.Lit.pos a; Sat.Lit.neg_of b ]

let num_wires t = t.n

let full_adder t a b cin =
  let axb = xor_ t a b in
  let sum = xor_ t axb cin in
  let carry = or_ t (and_ t a b) (and_ t axb cin) in
  (sum, carry)

let ripple_adder t xs ys =
  if List.length xs <> List.length ys then invalid_arg "Circuit.ripple_adder: widths";
  let carry = ref (const_false t) in
  let sums =
    List.map2
      (fun x y ->
        let s, c = full_adder t x y !carry in
        carry := c;
        s)
      xs ys
  in
  sums @ [ !carry ]

let multiplier t xs ys =
  let wx = List.length xs and wy = List.length ys in
  if wx = 0 || wy = 0 then invalid_arg "Circuit.multiplier: empty operand";
  let width = wx + wy in
  let zero = const_false t in
  let pad bits = bits @ List.init (width - List.length bits) (fun _ -> zero) in
  (* sum over shifted partial products, all padded to full width *)
  let acc = ref (pad []) in
  List.iteri
    (fun i y ->
      let partial = pad (List.init i (fun _ -> zero) @ List.map (fun x -> and_ t x y) xs) in
      let summed = ripple_adder t !acc partial in
      (* drop the final carry: it is provably 0 within width wx+wy *)
      acc := List.filteri (fun k _ -> k < width) summed)
    ys;
  !acc

let to_cnf t =
  let gates = Array.of_list (List.rev t.gates) in
  let clauses = ref t.assertions in
  let emit lits = clauses := Sat.Clause.make lits :: !clauses in
  let p w = Sat.Lit.pos w and n w = Sat.Lit.neg_of w in
  Array.iteri
    (fun z g ->
      match g with
      | Input -> ()
      | Const true -> emit [ p z ]
      | Const false -> emit [ n z ]
      | Not a ->
          emit [ p z; p a ];
          emit [ n z; n a ]
      | And (a, b) ->
          emit [ n z; p a ];
          emit [ n z; p b ];
          emit [ p z; n a; n b ]
      | Or (a, b) ->
          emit [ p z; n a ];
          emit [ p z; n b ];
          emit [ n z; p a; p b ]
      | Nand (a, b) ->
          emit [ p z; p a ];
          emit [ p z; p b ];
          emit [ n z; n a; n b ]
      | Xor (a, b) ->
          emit [ n z; p a; p b ];
          emit [ n z; n a; n b ];
          emit [ p z; n a; p b ];
          emit [ p z; p a; n b ])
    gates;
  Sat.Cnf.make ~num_vars:t.n (List.rev !clauses)

let eval t ~inputs =
  let gates = Array.of_list (List.rev t.gates) in
  let values = Array.make t.n None in
  List.iter (fun (w, v) -> values.(w) <- Some v) inputs;
  let rec value w =
    match values.(w) with
    | Some v -> v
    | None ->
        let v =
          match gates.(w) with
          | Input -> raise Not_found
          | Const b -> b
          | Not a -> not (value a)
          | And (a, b) -> value a && value b
          | Or (a, b) -> value a || value b
          | Nand (a, b) -> not (value a && value b)
          | Xor (a, b) -> value a <> value b
        in
        values.(w) <- Some v;
        v
  in
  value
