(** Inductive inference of boolean concepts (the SATLIB "ii" family).

    The instance asks whether a [terms]-term DNF over [attributes] boolean
    attributes exists that is consistent with a labelled sample: selector
    variables choose each term's literals, negative examples must escape
    every term, positive examples must be covered by some term (through
    per-example coverage auxiliaries).  Labels come from a hidden DNF, so
    the instance is satisfiable exactly when the hypothesis space is rich
    enough — with [terms] at least the hidden size it is SAT. *)

val generate :
  Stats.Rng.t -> attributes:int -> terms:int -> examples:int -> Sat.Cnf.t
