(* a full adder built purely from NAND gates (9-gate decomposition) *)
let nand_full_adder c a b cin ~buggy =
  let x1 = Circuit.nand_ c a b in
  let x2 = Circuit.nand_ c a x1 in
  let x3 = Circuit.nand_ c b x1 in
  let half = Circuit.nand_ c x2 x3 in
  (* half = a xor b *)
  let y1 = Circuit.nand_ c half cin in
  let y2 = Circuit.nand_ c half y1 in
  let y3 = Circuit.nand_ c cin y1 in
  let sum = Circuit.nand_ c y2 y3 in
  let carry = if buggy then Circuit.nand_ c x1 y3 else Circuit.nand_ c x1 y1 in
  (sum, carry)

let generate ?(buggy = false) rng ~bits =
  if bits < 1 then invalid_arg "Crypto.generate";
  ignore rng;
  let c = Circuit.create () in
  let xs = List.init bits (fun _ -> Circuit.fresh_input c) in
  let ys = List.init bits (fun _ -> Circuit.fresh_input c) in
  (* reference: textbook ripple-carry *)
  let ref_sum = Circuit.ripple_adder c xs ys in
  (* candidate: NAND-decomposed ripple-carry *)
  let carry = ref (Circuit.const_false c) in
  (* bind the sums first: @'s operand evaluation order must not read !carry
     before the fold over bits has run *)
  let cand_bits =
    List.map2
      (fun a b ->
        let s, co = nand_full_adder c a b !carry ~buggy in
        carry := co;
        s)
      xs ys
  in
  let cand_sum = cand_bits @ [ !carry ] in
  (* miter: some output bit differs *)
  let diffs = List.map2 (fun a b -> Circuit.xor_ c a b) ref_sum cand_sum in
  Circuit.assert_any c diffs;
  let cnf = Circuit.to_cnf c in
  let three, _ = Sat.Three_sat.convert cnf in
  three
