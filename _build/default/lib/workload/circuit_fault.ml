(* a random 2-input gate layer structure shared by both circuit copies *)
type plan = { n_inputs : int; ops : (int * int * int) list (* op, operand, operand *) }

let random_plan rng ~inputs ~gates =
  (* operands biased to recent wires: a deep output cone, like synthesised
     logic — a uniformly random DAG has near-trivial cones, which makes the
     equivalence proof collapse *)
  {
    n_inputs = inputs;
    ops =
      List.init gates (fun i ->
          let avail = inputs + i in
          let recent () =
            if avail <= 4 then Stats.Rng.int rng avail
            else max 0 (avail - 1 - Stats.Rng.int rng (min avail 8))
          in
          (Stats.Rng.int rng 4, recent (), recent ()));
  }

type style =
  | Direct  (** gates as written *)
  | Nand_decomposed  (** every gate rebuilt from NANDs (De Morgan form) *)

let gate c style op wa wb =
  match (style, op) with
  | Direct, 0 -> Circuit.and_ c wa wb
  | Direct, 1 -> Circuit.or_ c wa wb
  | Direct, 2 -> Circuit.xor_ c wa wb
  | Direct, _ -> Circuit.nand_ c wa wb
  | Nand_decomposed, 0 ->
      let n = Circuit.nand_ c wa wb in
      Circuit.nand_ c n n
  | Nand_decomposed, 1 ->
      let na = Circuit.nand_ c wa wa and nb = Circuit.nand_ c wb wb in
      Circuit.nand_ c na nb
  | Nand_decomposed, 2 ->
      let n = Circuit.nand_ c wa wb in
      let l = Circuit.nand_ c wa n and r = Circuit.nand_ c wb n in
      Circuit.nand_ c l r
  | Nand_decomposed, _ -> Circuit.nand_ c wa wb

(* instantiate the plan; [fault] may wrap the faulty gate's output; returns
   the last [outputs] wires, the observed cone of the miter *)
let build c plan ~style ~input_wires ~fault_at ~fault_wire ~outputs =
  let total = plan.n_inputs + List.length plan.ops in
  let wires = Array.make total 0 in
  List.iteri (fun i w -> wires.(i) <- w) input_wires;
  List.iteri
    (fun i (op, a, b) ->
      let w = gate c style op wires.(a) wires.(b) in
      let w = if plan.n_inputs + i = fault_at then fault_wire c w wires.(a) else w in
      wires.(plan.n_inputs + i) <- w)
    plan.ops;
  List.init (min outputs (List.length plan.ops)) (fun k -> wires.(total - 1 - k))

let generate ?(force_redundant = true) rng ~inputs ~gates =
  if inputs < 2 || gates < 2 then invalid_arg "Circuit_fault.generate";
  let plan = random_plan rng ~inputs ~gates in
  let c = Circuit.create () in
  let input_wires = List.init inputs (fun _ -> Circuit.fresh_input c) in
  let fault_at = inputs + Stats.Rng.int rng gates in
  let outputs = 4 in
  let good =
    build c plan ~style:Direct ~input_wires ~fault_at ~outputs
      ~fault_wire:(fun _ w _ -> w)
  in
  (* the second copy is NAND-resynthesised, so proving the miter UNSAT
     requires establishing the equivalence of every gate pair — the hardness
     profile of real stuck-at instances *)
  let faulty =
    if force_redundant then
      (* absorption gadget: w ∨ (w ∧ y) ≡ w, and with y stuck at 1 it is
         w ∨ w ≡ w — a testably redundant fault, not a local contradiction *)
      build c plan ~style:Nand_decomposed ~input_wires ~fault_at ~outputs
        ~fault_wire:(fun c w _ ->
          let y_stuck_1 = Circuit.const_true c in
          Circuit.or_ c w (Circuit.and_ c w y_stuck_1))
    else
      (* stuck-at-0 on a live wire: usually testable, hence satisfiable *)
      build c plan ~style:Nand_decomposed ~input_wires ~fault_at ~outputs
        ~fault_wire:(fun c _ _ -> Circuit.const_false c)
  in
  let diffs = List.map2 (fun a b -> Circuit.xor_ c a b) good faulty in
  Circuit.assert_any c diffs;
  let cnf = Circuit.to_cnf c in
  let three, _ = Sat.Three_sat.convert cnf in
  three
