(** Flat-graph 3-colouring (the SATLIB "Flat" family, paper's GC benchmarks).

    A random 3-colourable graph is built by hiding a balanced colouring and
    sampling edges only between differently-coloured nodes (Culberson's flat
    generator's key property).  The standard encoding gives, for [n] nodes
    and [e] edges: [3n] variables and [n + 3n + 3e] clauses — Flat150-360
    therefore has 450 variables and 1680 clauses, matching Table I. *)

val generate : Stats.Rng.t -> nodes:int -> edges:int -> Sat.Cnf.t

val flat : Stats.Rng.t -> int -> Sat.Cnf.t
(** [flat rng n] uses the SATLIB edge count [⌊2.394·n⌋] (e.g. 150 → 359 ≈
    Flat150-360). *)
