let is_prime k =
  if k < 2 then false
  else
    let rec go d = d * d > k || (k mod d <> 0 && go (d + 1)) in
    go 2

let random_prime rng ~bits =
  let lo = 1 lsl (bits - 1) and hi = 1 lsl bits in
  let rec draw guard =
    if guard = 0 then 3
    else
      let k = lo + Stats.Rng.int rng (hi - lo) in
      if is_prime k then k else draw (guard - 1)
  in
  draw 10_000

let of_target ~target ~bits =
  if bits < 2 || bits > 30 then invalid_arg "Factoring: bits out of range";
  let c = Circuit.create () in
  let xs = List.init bits (fun _ -> Circuit.fresh_input c) in
  let ys = List.init bits (fun _ -> Circuit.fresh_input c) in
  let product = Circuit.multiplier c xs ys in
  (* force the product bits to the target *)
  List.iteri
    (fun i w ->
      if (target lsr i) land 1 = 1 then Circuit.assert_true c w else Circuit.assert_false c w)
    product;
  (* exclude the factor 1: each operand must have a set bit above bit 0 *)
  let nontrivial ws =
    match ws with
    | _ :: high -> Circuit.assert_any c high
    | [] -> ()
  in
  nontrivial xs;
  nontrivial ys;
  let cnf = Circuit.to_cnf c in
  let three, _ = Sat.Three_sat.convert cnf in
  three

let generate rng ~bits =
  let p = random_prime rng ~bits and q = random_prime rng ~bits in
  of_target ~target:(p * q) ~bits:(bits + 1)
