(** Cryptographic comparator-adder equivalence (the SAT2002 "cmpadd" family,
    paper's CRY benchmark).

    Two structurally different [bits]-wide adders — a textbook ripple-carry
    and a NAND-decomposed variant — are compared by a miter.  The assertion
    that they differ is unsatisfiable, and (as in Table I's 180-iteration
    CRY row) the instance is heavy on propagation but easy on search. *)

val generate : ?buggy:bool -> Stats.Rng.t -> bits:int -> Sat.Cnf.t
(** With [buggy:true] one full adder's carry is mis-wired, making the miter
    satisfiable (a counterexample exists). *)
