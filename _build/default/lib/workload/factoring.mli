(** Integer factorisation as SAT (the "EzFact"/"Lisa" families, paper's IF
    benchmarks).

    An n-bit × n-bit array multiplier is Tseitin-encoded and its output
    forced to equal a semiprime [p·q]; unit clauses exclude the trivial
    factor 1 by forcing both operands' second-lowest bits free and requiring
    each operand > 1.  Satisfying assignments are exactly the non-trivial
    factorisations. *)

val generate : Stats.Rng.t -> bits:int -> Sat.Cnf.t
(** Random odd primes of [bits] bits are multiplied to form the target.
    [bits] must be in [2..30]. *)

val of_target : target:int -> bits:int -> Sat.Cnf.t
(** Factor a specific [target] with [bits]-bit operands; satisfiable iff
    [target] has a non-trivial factorisation with both factors < 2^bits. *)
