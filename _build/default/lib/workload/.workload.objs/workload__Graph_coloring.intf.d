lib/workload/graph_coloring.mli: Sat Stats
