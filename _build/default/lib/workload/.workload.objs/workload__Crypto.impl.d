lib/workload/crypto.ml: Circuit List Sat
