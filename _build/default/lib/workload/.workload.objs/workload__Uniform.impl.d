lib/workload/uniform.ml: Array List Sat Stats
