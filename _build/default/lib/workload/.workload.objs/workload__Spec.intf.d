lib/workload/spec.mli: Sat Stats
