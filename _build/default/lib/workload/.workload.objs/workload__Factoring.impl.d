lib/workload/factoring.ml: Circuit List Sat Stats
