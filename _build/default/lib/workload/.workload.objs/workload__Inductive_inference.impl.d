lib/workload/inductive_inference.ml: Array List Sat Stats
