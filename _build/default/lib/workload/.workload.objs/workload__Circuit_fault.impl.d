lib/workload/circuit_fault.ml: Array Circuit List Sat Stats
