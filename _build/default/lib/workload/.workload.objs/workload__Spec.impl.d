lib/workload/spec.ml: Block_planning Circuit_fault Crypto Factoring Graph_coloring Inductive_inference List Sat Stats Uniform
