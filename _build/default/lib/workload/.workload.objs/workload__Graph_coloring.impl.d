lib/workload/graph_coloring.ml: Array Fun Hashtbl List Sat Stats
