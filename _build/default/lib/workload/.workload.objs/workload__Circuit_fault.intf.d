lib/workload/circuit_fault.mli: Sat Stats
