lib/workload/block_planning.ml: Array Fun List Sat Stats
