lib/workload/factoring.mli: Sat Stats
