lib/workload/inductive_inference.mli: Sat Stats
