lib/workload/block_planning.mli: Sat Stats
