lib/workload/uniform.mli: Sat Stats
