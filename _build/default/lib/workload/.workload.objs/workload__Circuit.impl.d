lib/workload/circuit.ml: Array List Sat
