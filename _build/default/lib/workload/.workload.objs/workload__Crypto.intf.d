lib/workload/crypto.mli: Sat Stats
