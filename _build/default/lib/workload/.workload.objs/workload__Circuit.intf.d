lib/workload/circuit.mli: Sat
