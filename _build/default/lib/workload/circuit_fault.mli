(** Circuit fault analysis (the SATLIB "ssa"/"bf" families, paper's CFA).

    A random combinational circuit is duplicated with a single stuck-at
    fault injected on an internal wire; a miter XORs the two outputs and the
    CNF asserts the miter fires.  The instance is satisfiable iff some input
    vector distinguishes the faulty circuit (the fault is {e testable});
    stuck-at faults on redundant logic give unsatisfiable instances, which
    is why the paper's CFA benchmark is UNSAT-heavy. *)

val generate :
  ?force_redundant:bool -> Stats.Rng.t -> inputs:int -> gates:int -> Sat.Cnf.t
(** [force_redundant] (default [true]) masks the faulty wire behind an
    [x ∧ ¬x] guard so the fault provably cannot propagate, yielding an
    unsatisfiable instance like the paper's CFA benchmark; with
    [force_redundant:false] the fault is injected on a live wire and the
    instance is usually satisfiable. *)
