let generate rng ~attributes ~terms ~examples =
  if attributes < 2 || terms < 1 || examples < 1 then
    invalid_arg "Inductive_inference.generate";
  (* hidden 2-term DNF used to label the sample *)
  let hidden_term () =
    List.init 2 (fun _ -> (Stats.Rng.int rng attributes, Stats.Rng.bool rng))
  in
  let hidden = [ hidden_term (); hidden_term () ] in
  let label x =
    List.exists (List.for_all (fun (a, pol) -> x.(a) = pol)) hidden
  in
  (* selector variable: term j includes literal (attribute a, polarity pol) *)
  let sel j a pol = (((j * attributes) + a) * 2) + if pol then 1 else 0 in
  let n_sel = terms * attributes * 2 in
  let clauses = ref [] in
  let emit lits = clauses := Sat.Clause.make lits :: !clauses in
  let p_ v = Sat.Lit.pos v and n_ v = Sat.Lit.neg_of v in
  (* a term never selects both polarities of an attribute *)
  for j = 0 to terms - 1 do
    for a = 0 to attributes - 1 do
      emit [ n_ (sel j a true); n_ (sel j a false) ]
    done
  done;
  (* examples *)
  let next_cover = ref n_sel in
  let fresh_cover () =
    let v = !next_cover in
    incr next_cover;
    v
  in
  for _ = 1 to examples do
    let x = Array.init attributes (fun _ -> Stats.Rng.bool rng) in
    if label x then begin
      (* positive: some term covers x.  cover_j → term j selects no literal
         falsified by x; and ∨_j cover_j *)
      let covers =
        List.init terms (fun j ->
            let cj = fresh_cover () in
            for a = 0 to attributes - 1 do
              (* literal (a, pol) is falsified by x when x.(a) <> pol *)
              emit [ n_ cj; n_ (sel j a (not x.(a))) ]
            done;
            cj)
      in
      emit (List.map p_ covers)
    end
    else
      (* negative: every term must select a literal falsified by x *)
      for j = 0 to terms - 1 do
        emit (List.init attributes (fun a -> p_ (sel j a (not x.(a)))))
      done
  done;
  let cnf = Sat.Cnf.make ~num_vars:!next_cover !clauses in
  let three, _ = Sat.Three_sat.convert cnf in
  three
