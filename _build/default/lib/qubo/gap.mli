(** Energy-gap computation (paper §IV-C and Fig. 15).

    The energy gap of an encoded clause set is the minimum value of the
    (normalised) objective over assignments of the original variables that
    falsify at least one clause, with energy-optimal auxiliaries.  A larger
    gap means a steeper landscape and a higher chance the annealer escapes
    to the true minimum under noise. *)

val energy_gap : ?normalized:bool -> Encode.t -> float
(** Exhaustive over the original variables — intended for small clause sets
    (tests, Fig. 15).  [normalized] (default [true]) divides by
    {!Normalize.d_star} as the hardware would.
    @raise Invalid_argument beyond 20 original variables, or if the clause
    set is a tautology (no falsifying assignment exists). *)

val min_energy : ?normalized:bool -> Encode.t -> float
(** Global minimum of the objective over all assignments; 0 iff the clause
    set is satisfiable (within float tolerance). *)
