let d_star h =
  let m = ref 0. in
  Pbq.iter_linear h (fun _ b -> m := Float.max !m (Float.abs b /. 2.));
  Pbq.iter_quad h (fun _ _ j -> m := Float.max !m (Float.abs j));
  if !m = 0. then 1.0 else !m

let apply h = Pbq.scale h (1. /. d_star h)

let within_hardware_range ?(eps = 1e-9) h =
  let ok = ref true in
  Pbq.iter_linear h (fun _ b -> if Float.abs b > 2. +. eps then ok := false);
  Pbq.iter_quad h (fun _ _ j -> if Float.abs j > 1. +. eps then ok := false);
  !ok
