type t = {
  mutable c0 : float;
  lin : (int, float) Hashtbl.t;
  quad : (int * int, float) Hashtbl.t; (* keys normalised to i < j *)
}

let create () = { c0 = 0.; lin = Hashtbl.create 16; quad = Hashtbl.create 16 }

let copy t = { c0 = t.c0; lin = Hashtbl.copy t.lin; quad = Hashtbl.copy t.quad }
let const t = t.c0
let add_const t c = t.c0 <- t.c0 +. c

let eps_zero = 1e-12

let bump tbl key c =
  let cur = Option.value ~default:0. (Hashtbl.find_opt tbl key) in
  let c = cur +. c in
  if Float.abs c < eps_zero then Hashtbl.remove tbl key else Hashtbl.replace tbl key c

let add_linear t i c = bump t.lin i c

let norm_key i j = if i < j then (i, j) else (j, i)

let add_quad t i j c =
  if i = j then invalid_arg "Pbq.add_quad: diagonal term";
  bump t.quad (norm_key i j) c

let linear t i = Option.value ~default:0. (Hashtbl.find_opt t.lin i)
let quad t i j = Option.value ~default:0. (Hashtbl.find_opt t.quad (norm_key i j))

let add_scaled acc t alpha =
  acc.c0 <- acc.c0 +. (alpha *. t.c0);
  Hashtbl.iter (fun i c -> add_linear acc i (alpha *. c)) t.lin;
  Hashtbl.iter (fun (i, j) c -> add_quad acc i j (alpha *. c)) t.quad

let vars t =
  let s = Hashtbl.create 16 in
  Hashtbl.iter (fun i _ -> Hashtbl.replace s i ()) t.lin;
  Hashtbl.iter (fun (i, j) _ -> Hashtbl.replace s i (); Hashtbl.replace s j ()) t.quad;
  List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) s [])

let edges t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.quad [])

let iter_linear t f = Hashtbl.iter f t.lin
let iter_quad t f = Hashtbl.iter (fun (i, j) c -> f i j c) t.quad

let eval t assign =
  let v = ref t.c0 in
  Hashtbl.iter (fun i c -> if assign i then v := !v +. c) t.lin;
  Hashtbl.iter (fun (i, j) c -> if assign i && assign j then v := !v +. c) t.quad;
  !v

let eval_array t a = eval t (fun i -> a.(i))

let scale t alpha =
  let s = create () in
  add_scaled s t alpha;
  s

let equal ?(eps = 1e-9) t1 t2 =
  let close a b = Float.abs (a -. b) <= eps in
  close t1.c0 t2.c0
  && List.for_all (fun v -> close (linear t1 v) (linear t2 v)) (vars t1 @ vars t2)
  && List.for_all
       (fun (i, j) -> close (quad t1 i j) (quad t2 i j))
       (edges t1 @ edges t2)

let pp fmt t =
  Format.fprintf fmt "%.3f" t.c0;
  List.iter (fun i -> Format.fprintf fmt " %+.3f·x%d" (linear t i) i) (vars t);
  List.iter (fun (i, j) -> Format.fprintf fmt " %+.3f·x%d·x%d" (quad t i j) i j) (edges t)
