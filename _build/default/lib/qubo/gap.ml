let scan ?(normalized = true) (t : Encode.t) ~keep =
  let n = t.Encode.num_original_vars in
  if n > 20 then invalid_arg "Gap: too many variables for exhaustive scan";
  let obj = Encode.objective t in
  let scale = if normalized then 1. /. Normalize.d_star obj else 1. in
  let best = ref infinity in
  for bits = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun v -> bits land (1 lsl v) <> 0) in
    if keep x then begin
      let e = Pbq.eval_array obj (Encode.best_aux t x) *. scale in
      if e < !best then best := e
    end
  done;
  if !best = infinity then invalid_arg "Gap: no assignment in scan domain";
  !best

let energy_gap ?normalized t =
  scan ?normalized t ~keep:(fun x -> not (Encode.clauses_satisfied t x))

let min_energy ?normalized t = scan ?normalized t ~keep:(fun _ -> true)
