(** Hardware-range normalisation (paper Equation 6).

    QA hardware accepts vertex weights [B ∈ [-2, 2]] and edge weights
    [J ∈ [-1, 1]]; the objective is divided by
    [d* = max(max_i |B_i|/2, max_{ij} |J_{ij}|)], which also divides the
    energy gap — the noise-amplification the paper's §IV-C fights. *)

val d_star : Pbq.t -> float
(** The scaling denominator; [1.0] for a function with no terms (so that
    normalising is always safe). *)

val apply : Pbq.t -> Pbq.t
(** Fresh normalised copy: all coefficients divided by {!d_star}. *)

val within_hardware_range : ?eps:float -> Pbq.t -> bool
(** Checks [B ∈ [-2,2]] and [J ∈ [-1,1]] up to [eps]. *)
