(** Pseudo-boolean quadratic functions
    [H(x) = const + Σ B_i x_i + Σ J_{ij} x_i x_j] over 0/1 variables.

    This is the paper's Equation 2 objective form.  Variables are plain
    integers; coefficients are stored sparsely.  Terms whose coefficient
    becomes (numerically) zero are dropped. *)

type t

val create : unit -> t
val copy : t -> t
val const : t -> float
val add_const : t -> float -> unit
val add_linear : t -> int -> float -> unit
val add_quad : t -> int -> int -> float -> unit
(** [add_quad h i j c] adds [c·x_i·x_j]; [i <> j] required ([x_i² = x_i]
    callers must fold squares into the linear term themselves). *)

val linear : t -> int -> float
(** Coefficient [B_i] (0 when absent). *)

val quad : t -> int -> int -> float
(** Coefficient [J_{ij}] (order-insensitive, 0 when absent). *)

val add_scaled : t -> t -> float -> unit
(** [add_scaled acc h α] folds [α·h] into [acc]. *)

val vars : t -> int list
(** Sorted distinct variables with a non-zero coefficient. *)

val edges : t -> (int * int) list
(** Sorted pairs with non-zero quadratic coefficient — the problem-graph
    edges of paper Fig. 2(d). *)

val iter_linear : t -> (int -> float -> unit) -> unit
val iter_quad : t -> (int -> int -> float -> unit) -> unit

val eval : t -> (int -> bool) -> float
(** Evaluate under a 0/1 assignment. *)

val eval_array : t -> bool array -> float

val scale : t -> float -> t
(** Fresh function multiplied by a scalar. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
