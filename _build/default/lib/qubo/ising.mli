(** Ising-model form of a QUBO objective.

    QA hardware is described by the Ising Hamiltonian
    [E(s) = offset + Σ h_i s_i + Σ J_{ij} s_i s_j] over spins [s ∈ {-1,+1}];
    the transform is [x = (1 + s)/2]. *)

type t = {
  num_spins : int;
  h : float array;  (** local fields, indexed by dense spin index *)
  j : ((int * int) * float) list;  (** couplings, keys [i < j] in spin index *)
  offset : float;
  spin_of_var : (int, int) Hashtbl.t;  (** QUBO variable → dense spin index *)
  var_of_spin : int array;  (** dense spin index → QUBO variable *)
}

val of_qubo : Pbq.t -> t
(** Densely re-indexes the QUBO variables and converts coefficients. *)

val energy : t -> int array -> float
(** Energy of a spin configuration (entries must be ±1). *)

val spins_of_bools : t -> bool array -> int array
(** Convert a QUBO assignment (indexed by QUBO variable) to spins. *)

val bools_of_spins : t -> int array -> (int * bool) list
(** Spin configuration back to [(qubo_var, value)] pairs. *)
