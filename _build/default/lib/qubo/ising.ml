type t = {
  num_spins : int;
  h : float array;
  j : ((int * int) * float) list;
  offset : float;
  spin_of_var : (int, int) Hashtbl.t;
  var_of_spin : int array;
}

let of_qubo q =
  let vars = Pbq.vars q in
  let n = List.length vars in
  let spin_of_var = Hashtbl.create n in
  let var_of_spin = Array.make (max n 1) 0 in
  List.iteri
    (fun i v ->
      Hashtbl.replace spin_of_var v i;
      var_of_spin.(i) <- v)
    vars;
  let h = Array.make (max n 1) 0. in
  let offset = ref (Pbq.const q) in
  (* x = (1+s)/2:  B·x = B/2 + (B/2)·s ;  J·x·y = J/4 + (J/4)(s_x+s_y) + (J/4)s_x s_y *)
  Pbq.iter_linear q (fun v b ->
      let i = Hashtbl.find spin_of_var v in
      h.(i) <- h.(i) +. (b /. 2.);
      offset := !offset +. (b /. 2.));
  let j = ref [] in
  Pbq.iter_quad q (fun v w c ->
      let i = Hashtbl.find spin_of_var v and k = Hashtbl.find spin_of_var w in
      let i, k = if i < k then (i, k) else (k, i) in
      h.(i) <- h.(i) +. (c /. 4.);
      h.(k) <- h.(k) +. (c /. 4.);
      offset := !offset +. (c /. 4.);
      j := ((i, k), c /. 4.) :: !j);
  { num_spins = n; h; j = !j; offset = !offset; spin_of_var; var_of_spin }

let energy t spins =
  let e = ref t.offset in
  Array.iteri (fun i hi -> e := !e +. (hi *. float_of_int spins.(i))) (Array.sub t.h 0 t.num_spins);
  List.iter
    (fun ((i, k), c) -> e := !e +. (c *. float_of_int (spins.(i) * spins.(k))))
    t.j;
  !e

let spins_of_bools t bools =
  Array.init t.num_spins (fun i -> if bools.(t.var_of_spin.(i)) then 1 else -1)

let bools_of_spins t spins =
  List.init t.num_spins (fun i -> (t.var_of_spin.(i), spins.(i) = 1))
