lib/qubo/adjust.mli: Encode Pbq
