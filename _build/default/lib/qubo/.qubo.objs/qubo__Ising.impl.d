lib/qubo/ising.ml: Array Hashtbl List Pbq
