lib/qubo/encode.mli: Pbq Sat
