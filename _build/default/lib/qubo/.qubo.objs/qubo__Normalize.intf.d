lib/qubo/normalize.mli: Pbq
