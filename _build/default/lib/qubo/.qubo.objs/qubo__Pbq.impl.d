lib/qubo/pbq.ml: Array Float Format Hashtbl Int List Option
