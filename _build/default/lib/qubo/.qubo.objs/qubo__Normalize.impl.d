lib/qubo/normalize.ml: Float Pbq
