lib/qubo/gap.mli: Encode
