lib/qubo/adjust.ml: Array Encode Float List Normalize Pbq
