lib/qubo/gap.ml: Array Encode Normalize Pbq
