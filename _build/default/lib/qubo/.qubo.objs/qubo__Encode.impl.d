lib/qubo/encode.ml: Array Int List Pbq Sat
