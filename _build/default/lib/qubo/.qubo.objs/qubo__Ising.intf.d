lib/qubo/ising.mli: Hashtbl Pbq
