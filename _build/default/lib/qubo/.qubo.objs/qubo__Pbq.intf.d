lib/qubo/pbq.mli: Format
