(** Noise-optimising coefficient adjustment (paper §IV-C, Equations 7–9).

    With all sub-clause weights α = 1, the global objective's largest
    coefficient d* divides everything in normalisation, flattening the
    energy landscape of sub-clauses whose own coefficients are small.  The
    fix: compute per-sub-clause [d_{i,j}] — the maximum coefficient of the
    global α=1 objective restricted to the sub-clause's variables — and
    raise each weight to [α_{i,j} = d*/d_{i,j} ≥ 1].  d* is unchanged, so
    normalisation divides by the same number while weak sub-clauses now sit
    on a steeper slope. *)

val d_sub : Pbq.t -> Encode.sub -> float
(** [d_sub objective s] is Equation 7's [d_{i,j}]: the max of [|B_x|/2] over
    the sub-clause's variables and [|J_{x1,x2}|] over its variable pairs, as
    coefficients of the global [objective].  Returns [1.0] if every involved
    coefficient vanished. *)

val adjust : Encode.t -> unit
(** Sets every sub-clause's [alpha] to [d*/d_{i,j}] in place, using the
    current α = 1 baseline objective — then caps: when boosted sub-clauses
    share variables their coefficients stack and can exceed d*, which would
    grow the normalisation divisor and shrink the gap the adjustment was
    meant to protect.  Offending sub-clauses are scaled back (never below
    α = 1) until the adjusted objective's d* is no larger than the
    baseline's.  (The paper states d* is preserved; that only holds without
    variable sharing, so the cap is this reproduction's explicit fix.) *)

val reset : Encode.t -> unit
(** Restore all α to 1. *)
