(** Analytic QA timing model (paper §VI-A setup and Fig. 1).

    Wall-clock per annealing cycle on D-Wave 2000Q: 20 µs anneal + 110 µs
    readout, with a 20 µs re-thermalisation delay between consecutive samples
    and a one-off programming cost when a new problem is loaded. *)

type t = {
  anneal_us : float;
  readout_us : float;
  delay_us : float;
  programming_us : float;
}

val d_wave_2000q : t
(** anneal 20 µs, readout 110 µs, delay 20 µs, programming 8 µs. *)

val single_sample_us : t -> float
(** Programming + one anneal + one readout (the HyQSAT mode: one sample per
    call, ≈ 130 µs). *)

val multi_sample_us : t -> samples:int -> float
(** Full multi-sample access time, the Fig. 1 formula:
    [(anneal + readout) × samples + delay × (samples - 1)] plus
    programming. *)
