type t = { coeff_sigma : float; readout_flip : float; shallow_anneal : bool }

let noise_free = { coeff_sigma = 0.; readout_flip = 0.; shallow_anneal = false }
let default_2000q = { coeff_sigma = 0.03; readout_flip = 0.01; shallow_anneal = true }
let bit_flip_only p = { coeff_sigma = 0.; readout_flip = p; shallow_anneal = false }

let apply_coeff t rng (ising : Sparse_ising.t) =
  if t.coeff_sigma = 0. then ising
  else begin
    let jitter x = x +. Stats.Rng.gaussian rng ~mu:0. ~sigma:t.coeff_sigma in
    let h = Array.map jitter ising.Sparse_ising.h in
    (* CSR stores each coupling twice; perturb symmetric pairs coherently by
       rebuilding from the upper triangle *)
    let couplings = ref [] in
    for i = 0 to ising.Sparse_ising.n - 1 do
      for k = ising.Sparse_ising.off.(i) to ising.Sparse_ising.off.(i + 1) - 1 do
        let j = ising.Sparse_ising.nbr.(k) in
        if j > i then couplings := ((i, j), jitter ising.Sparse_ising.cpl.(k)) :: !couplings
      done
    done;
    Sparse_ising.build ~n:ising.Sparse_ising.n ~h ~couplings:!couplings
      ~offset:ising.Sparse_ising.offset
  end

let apply_readout t rng spins =
  if t.readout_flip = 0. then spins
  else
    Array.map (fun s -> if Stats.Rng.float rng 1.0 < t.readout_flip then -s else s) spins
