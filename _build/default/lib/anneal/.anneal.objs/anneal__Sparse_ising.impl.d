lib/anneal/sparse_ising.ml: Array Hashtbl List Option
