lib/anneal/sampler.ml: Array Sparse_ising Stats
