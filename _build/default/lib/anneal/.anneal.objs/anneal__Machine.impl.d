lib/anneal/machine.ml: Array Chimera Embed Hashtbl List Noise Option Printf Qubo Sampler Sparse_ising Stats Timing
