lib/anneal/sparse_ising.mli:
