lib/anneal/noise.mli: Sparse_ising Stats
