lib/anneal/timing.mli:
