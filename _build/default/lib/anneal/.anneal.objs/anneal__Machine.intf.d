lib/anneal/machine.mli: Embed Noise Qubo Sampler Stats Timing
