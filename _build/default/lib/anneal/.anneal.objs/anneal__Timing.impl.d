lib/anneal/timing.ml:
