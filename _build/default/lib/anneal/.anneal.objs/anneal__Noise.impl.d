lib/anneal/noise.ml: Array Sparse_ising Stats
