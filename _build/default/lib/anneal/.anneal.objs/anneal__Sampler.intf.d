lib/anneal/sampler.mli: Sparse_ising Stats
