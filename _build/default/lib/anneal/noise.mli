(** NISQ noise model for the simulated annealer (paper §I: environment,
    crosstalk and readout noise on D-Wave 2000Q).

    Coefficient noise perturbs the programmed fields/couplings (integrated
    control-error model); readout noise flips measured spins independently.
    Thermal noise is modelled by running a shallower annealing schedule. *)

type t = {
  coeff_sigma : float;  (** Gaussian σ added to each h and J, relative scale *)
  readout_flip : float;  (** independent bit-flip probability at readout *)
  shallow_anneal : bool;  (** use {!Sampler.quick_schedule} (thermal noise) *)
}

val noise_free : t
val default_2000q : t
(** Calibrated so that HyQSAT's Table II iteration-variance stays near 1:
    σ = 0.03, 1 % readout flips, shallow anneal. *)

val bit_flip_only : float -> t
(** The Table III scalability model: a pure [p] readout bit-flip channel on
    top of noise-free annealing. *)

val apply_coeff : t -> Stats.Rng.t -> Sparse_ising.t -> Sparse_ising.t
(** Fresh problem with perturbed coefficients (noise-free input is shared,
    not copied). *)

val apply_readout : t -> Stats.Rng.t -> int array -> int array
(** Possibly-flipped copy of the measured spins. *)
