type t = {
  anneal_us : float;
  readout_us : float;
  delay_us : float;
  programming_us : float;
}

let d_wave_2000q = { anneal_us = 20.; readout_us = 110.; delay_us = 20.; programming_us = 8. }

let single_sample_us t = t.programming_us +. t.anneal_us +. t.readout_us

let multi_sample_us t ~samples =
  if samples < 1 then invalid_arg "Timing.multi_sample_us";
  t.programming_us
  +. ((t.anneal_us +. t.readout_us) *. float_of_int samples)
  +. (t.delay_us *. float_of_int (samples - 1))
