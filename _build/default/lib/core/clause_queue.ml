let generate ?(top_k = 30) ?(var_budget = max_int) rng f ~activity ~limit =
  let m = Sat.Cnf.num_clauses f in
  if m = 0 || limit <= 0 then []
  else begin
    (* head: random choice among the top-k activity scores.  A bounded
       insertion scan is O(mÂ·k), cheaper than sorting all clauses on every
       warm-up iteration *)
    let k = min top_k m in
    let top = Array.make k (-1) in
    let top_act = Array.make k neg_infinity in
    for c = 0 to m - 1 do
      let a = activity c in
      if a > top_act.(k - 1) then begin
        (* insert into the sorted top-k prefix *)
        let i = ref (k - 1) in
        while !i > 0 && top_act.(!i - 1) < a do
          top_act.(!i) <- top_act.(!i - 1);
          top.(!i) <- top.(!i - 1);
          decr i
        done;
        top_act.(!i) <- a;
        top.(!i) <- c
      end
    done;
    let head = top.(Stats.Rng.int rng k) in
    (* breadth-first traversal over shared variables under the variable
       budget; skipped clauses stay unvisited and are re-checked on later
       encounters, when fewer of their variables are new *)
    let visited = Array.make m false in
    let in_set = Array.make (Sat.Cnf.num_vars f) false in
    let n_vars = ref 0 in
    let queue = Queue.create () in
    let out = ref [] in
    let count = ref 0 in
    let push k =
      if (not visited.(k)) && !count < limit then begin
        let vars = Sat.Clause.vars (Sat.Cnf.clause f k) in
        let new_vars = List.filter (fun v -> not in_set.(v)) vars in
        if !n_vars + List.length new_vars <= var_budget then begin
          List.iter
            (fun v ->
              in_set.(v) <- true;
              incr n_vars)
            new_vars;
          visited.(k) <- true;
          Queue.push k queue;
          out := k :: !out;
          incr count
        end
      end
    in
    push head;
    while not (Queue.is_empty queue) do
      let k = Queue.pop queue in
      List.iter
        (fun v -> List.iter push (Sat.Cnf.clauses_of_var f v))
        (Sat.Clause.vars (Sat.Cnf.clause f k))
    done;
    List.rev !out
  end

let generate_random rng f ~limit =
  let m = Sat.Cnf.num_clauses f in
  let k = min limit m in
  if k <= 0 then [] else Stats.Rng.sample_without_replacement rng k m
