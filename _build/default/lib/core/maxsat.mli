(** MAX-SAT through the annealing stack (the extension direction of the
    paper's foundation reference [8], "Solving SAT and MaxSAT with a quantum
    annealer").

    The α = 1 objective of {!Qubo.Encode} is, by construction, a relaxation
    whose minimum counts (a weighting of) the violated clauses, so the same
    frontend — queue, embedding, annealer — approximates MAX-SAT directly:
    sample, unembed, and count violations.  A classical local-search baseline
    is included for comparison. *)

type result = {
  assignment : bool array;  (** over the original variables *)
  violated : int;  (** clauses falsified by [assignment] *)
}

val approximate :
  ?samples:int ->
  ?noise:Anneal.Noise.t ->
  Stats.Rng.t ->
  Chimera.Graph.t ->
  Sat.Cnf.t ->
  result option
(** Best of [samples] (default 8) annealing cycles.  [None] when the clause
    queue does not embed at all; when only a prefix embeds, the assignment
    still covers every variable (unembedded ones default to the annealer's
    best guess of false) and [violated] is counted over the whole formula. *)

val local_search : ?max_flips:int -> Stats.Rng.t -> Sat.Cnf.t -> result
(** WalkSAT-style minimisation of the violated-clause count (keeps the best
    configuration seen, so it is a proper MAX-SAT heuristic). *)

val exact : ?max_conflicts_per_step:int -> Sat.Cnf.t -> result option
(** Exact MAX-SAT by the classical linear-search algorithm: each clause gets
    a relaxation selector, and the selector count is bounded with
    {!Sat.Cardinality.at_most_k}, raised until the CDCL solver answers SAT.
    The first satisfiable bound is the optimum.  [None] if a step exceeds
    the conflict budget (default unlimited). *)
