type strategy = S1_solved | S2_keep_assignment | S3_none | S4_reach_conflict

type enabled = { s1 : bool; s2 : bool; s4 : bool }

let all_enabled = { s1 = true; s2 = true; s4 = true }

let classify calib ~all_embedded ~energy =
  match Stats.Naive_bayes.classify calib.Calibration.partition energy with
  | Stats.Naive_bayes.Satisfiable -> if all_embedded then S1_solved else S2_keep_assignment
  | Stats.Naive_bayes.Near_satisfiable -> S2_keep_assignment
  | Stats.Naive_bayes.Uncertain -> S3_none
  | Stats.Naive_bayes.Near_unsatisfiable -> S4_reach_conflict

type applied = {
  strategy : strategy;
  solved : bool array option;
  cpu_time_s : float;
}

let apply ?(enabled = all_enabled) ?(s2_energy_gate = infinity) ?(allow_s2_hints = true)
    ?(hint_filter = fun _ _ -> true) calib solver f prepared outcome =
  let t0 = Sys.time () in
  let strategy =
    classify calib ~all_embedded:prepared.Frontend.all_clauses_embedded
      ~energy:outcome.Anneal.Machine.energy
  in
  let num_vars = Sat.Cnf.num_vars f in
  let assignment_of_node =
    List.filter (fun (node, _) -> node < num_vars) outcome.Anneal.Machine.assignment
  in
  let strategy =
    (* ablations: a disabled strategy degrades to "no guidance" *)
    match strategy with
    | S1_solved when not enabled.s1 -> S3_none
    | S2_keep_assignment when not enabled.s2 -> S3_none
    | S4_reach_conflict when not enabled.s4 -> S3_none
    | s -> s
  in
  let solved =
    match strategy with
    | S1_solved ->
        (* trust but verify: extend with the annealer values and check *)
        let model = Array.make num_vars false in
        List.iter (fun (v, b) -> model.(v) <- b) assignment_of_node;
        if Sat.Assignment.satisfies (Sat.Assignment.of_bools model) f then Some model else None
    | S2_keep_assignment | S3_none | S4_reach_conflict -> None
  in
  (match (strategy, solved) with
  | S1_solved, Some _ -> ()
  | (S1_solved | S2_keep_assignment), _ ->
      (* keep the annealer's assignment as saved phases: the next decision on
         each variable reproduces the annealer's value without disturbing the
         activity order (disturbing it thrashes easy instances) *)
      if allow_s2_hints && outcome.Anneal.Machine.energy <= s2_energy_gate then
        List.iter
          (fun (v, b) -> if hint_filter v b then Cdcl.Solver.set_polarity solver v b)
          assignment_of_node
  | S4_reach_conflict, _ ->
      (* drive straight into the conflicting subproblem *)
      Cdcl.Solver.prioritize_vars solver prepared.Frontend.vars_involved;
      List.iter
        (fun v -> Cdcl.Solver.bump_var solver v 1.0)
        prepared.Frontend.vars_involved
  | S3_none, _ -> ());
  { strategy; solved; cpu_time_s = Sys.time () -. t0 }
