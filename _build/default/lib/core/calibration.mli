(** Energy-distribution calibration (paper §V-A, Fig. 8).

    Random satisfiable and unsatisfiable 3-SAT problems are annealed; a
    Gaussian Naive Bayes model is fitted to the two energy samples and the
    energy axis partitioned into the four confidence intervals the backend
    interprets. *)

type t = {
  model : Stats.Naive_bayes.t;
  partition : Stats.Naive_bayes.partition;
  sat_energies : float array;  (** calibration sample, satisfiable class *)
  unsat_energies : float array;  (** calibration sample, unsatisfiable class *)
}

val paper_default : t
(** The distribution the paper reports for D-Wave 2000Q: cut points at 4.5
    (90 % satisfiable below) and 8 (90 % unsatisfiable above), with Gaussians
    matching Fig. 8's shape.  Zero-cost — use when a full calibration run is
    not wanted. *)

val simulator_default : t
(** Fitted to this repository's simulated annealer (fig8 bench, default
    noise): the same three-interval structure on a compressed energy scale
    (the SA device with post-processing leaves less residue than 2016-era
    hardware).  This is the hybrid solver's default. *)

val calibrate :
  ?problems:int ->
  ?noise:Anneal.Noise.t ->
  ?confidence:float ->
  ?adjust:bool ->
  Stats.Rng.t ->
  Chimera.Graph.t ->
  t
(** [calibrate rng graph] collects [problems] (default 60) energy samples
    per class by embedding random problems' clause queues, annealing each
    once under [noise], and labelling with the {e embedded subset's} true
    satisfiability (decided classically).  Calibrating on embedded subsets
    rather than whole problems matches the population the backend classifies
    at run time; Fig. 8's 50–160-clause, 15–40-variable shape is preserved
    through the queue generator. *)
