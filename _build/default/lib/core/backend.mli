(** HyQSAT backend: from a QA outcome to CDCL guidance (paper §V).

    The annealer's energy is classified into the four confidence intervals;
    the matching feedback strategy is applied to the solver:

    {ol
    {- {b Strategy 1} — all clauses embedded and energy 0: verify the
       assignment against the whole formula and finish.}
    {- {b Strategy 2} — satisfiable (partial embedding) or near-satisfiable:
       keep the annealer's variable assignments as saved phases and decide
       those variables first.}
    {- {b Strategy 3} — uncertain: no guidance.}
    {- {b Strategy 4} — near-unsatisfiable: prioritise the involved variables
       so the search reaches the inevitable conflict quickly.}} *)

type strategy = S1_solved | S2_keep_assignment | S3_none | S4_reach_conflict

type enabled = { s1 : bool; s2 : bool; s4 : bool }
(** Ablation switches (Fig. 10).  Disabled strategies fall back to S3. *)

val all_enabled : enabled

val classify :
  Calibration.t -> all_embedded:bool -> energy:float -> strategy
(** Map an energy reading to the feedback strategy of §V-B's table. *)

type applied = {
  strategy : strategy;
  solved : bool array option;  (** Strategy 1 verified model *)
  cpu_time_s : float;
}

val apply :
  ?enabled:enabled ->
  ?s2_energy_gate:float ->
  ?allow_s2_hints:bool ->
  ?hint_filter:(Sat.Lit.var -> bool -> bool) ->
  Calibration.t ->
  Cdcl.Solver.t ->
  Sat.Cnf.t ->
  Frontend.prepared ->
  Anneal.Machine.outcome ->
  applied
(** Classify and act on the solver.  Strategy 1's model is re-verified
    against the full formula before being trusted (annealer noise can never
    compromise soundness).  Strategy 2's phase hints can be restricted two
    ways: [s2_energy_gate] (default: no gate) drops hints from samples whose
    energy exceeds the gate, and [hint_filter] selects which
    (variable, value) hints apply — the hybrid driver passes a vote-margin
    filter that only lets through variables stable across many samples,
    which is what keeps one-off subset solutions from thrashing the saved
    phases.  [allow_s2_hints] disables hint application wholesale for a
    call.  Strategies 1 and 4 are unaffected by all three. *)
