(** Clause-queue generation (paper §IV-A, Fig. 6).

    The queue head is drawn at random from the clauses with top-30 activity
    scores (conflict frequency, maintained by the CDCL solver); the rest of
    the queue is a breadth-first traversal over shared variables, which
    maximises variable locality for the embedder.  The traversal stops at
    the hardware-capacity threshold. *)

val generate :
  ?top_k:int ->
  ?var_budget:int ->
  Stats.Rng.t ->
  Sat.Cnf.t ->
  activity:(int -> float) ->
  limit:int ->
  int list
(** [generate rng f ~activity ~limit] is an ordered list of clause indices,
    at most [limit] long.  [top_k] defaults to the paper's 30.

    [var_budget] bounds the distinct variables in the queue (the hardware's
    vertical-line count): a clause that would push the variable set past the
    budget is skipped — but reconsidered on later encounters, since its
    missing variables may have joined the set through other clauses.  This
    is what lets a 64-line graph host ~10× more clauses than variables, as
    in the paper's ≈170-clause capacity.  Returns [[]] for an empty
    formula. *)

val generate_random : Stats.Rng.t -> Sat.Cnf.t -> limit:int -> int list
(** The Fig. 14 ablation baseline: a uniformly random clause subset (no
    activity, no locality). *)
