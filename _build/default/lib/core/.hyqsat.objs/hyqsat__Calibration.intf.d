lib/core/calibration.mli: Anneal Chimera Stats
