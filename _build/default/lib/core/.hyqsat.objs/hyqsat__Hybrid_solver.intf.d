lib/core/hybrid_solver.mli: Anneal Backend Calibration Cdcl Chimera Frontend Sat
