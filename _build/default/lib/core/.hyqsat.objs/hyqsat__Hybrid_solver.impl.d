lib/core/hybrid_solver.ml: Anneal Array Backend Calibration Cdcl Chimera Float Frontend Hashtbl List Option Sat Stats Sys
