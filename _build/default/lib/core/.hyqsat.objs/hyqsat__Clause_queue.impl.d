lib/core/clause_queue.ml: Array List Queue Sat Stats
