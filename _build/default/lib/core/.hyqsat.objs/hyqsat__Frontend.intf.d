lib/core/frontend.mli: Anneal Chimera Sat Stats
