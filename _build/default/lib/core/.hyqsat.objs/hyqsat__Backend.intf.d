lib/core/backend.mli: Anneal Calibration Cdcl Frontend Sat
