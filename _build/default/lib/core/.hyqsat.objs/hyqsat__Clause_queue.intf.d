lib/core/clause_queue.mli: Sat Stats
