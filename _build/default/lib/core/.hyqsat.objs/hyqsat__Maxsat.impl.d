lib/core/maxsat.ml: Anneal Array Cdcl Frontend List Sat Stats
