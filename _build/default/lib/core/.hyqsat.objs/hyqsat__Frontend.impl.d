lib/core/frontend.ml: Anneal Chimera Clause_queue Embed Int List Qubo Sat Sys
