lib/core/backend.ml: Anneal Array Calibration Cdcl Frontend List Sat Stats Sys
