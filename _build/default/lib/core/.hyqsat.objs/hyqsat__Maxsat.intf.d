lib/core/maxsat.mli: Anneal Chimera Sat Stats
