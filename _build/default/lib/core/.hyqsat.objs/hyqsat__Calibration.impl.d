lib/core/calibration.ml: Anneal Array Cdcl Clause_queue Embed List Qubo Sat Stats
